//! `cqd` — the conjunctive-query daemon.
//!
//! ```text
//! cqd [--addr HOST:PORT] [--workers N] [--port-file PATH] [--data-dir PATH]
//!     [--metrics-interval SECS] [--slow-query-ms N]
//! ```
//!
//! Binds (default `127.0.0.1:7878`; use port 0 for an ephemeral port),
//! prints `cqd listening on <addr>`, optionally writes the resolved
//! address to `--port-file` (so scripts can find an ephemeral port),
//! and serves until killed.
//!
//! `--metrics-interval SECS` dumps the full metrics registry (the same
//! lines `METRICS` returns over the wire, prefixed `cqd metric:`) plus
//! any slow-query log entries accumulated since the previous dump to
//! stdout every SECS seconds. `--slow-query-ms N` enables the
//! slow-query log for queries taking at least N milliseconds; without
//! `--metrics-interval` the entries are still visible over the wire
//! via `METRICS` (the `server slow-queries` gauge) and retained for
//! the periodic dump.
//!
//! With `--data-dir`, tenants are durable: every tenant found under
//! the directory is recovered on boot (snapshot + write-ahead-log
//! replay, torn log tails truncated with a warning), wire mutations
//! are write-ahead logged, and `SAVE` checkpoints a tenant into a
//! fresh snapshot. Without it, behavior is exactly the in-memory
//! server of earlier releases.

use cq_server::server::Server;
use cq_server::state::ServerState;
use cq_storage::{FaultPlan, Store};
use std::sync::Arc;

fn main() {
    let mut addr = "127.0.0.1:7878".to_string();
    let mut workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut port_file: Option<String> = None;
    let mut data_dir: Option<String> = None;
    let mut metrics_interval: Option<u64> = None;
    let mut slow_query_ms: Option<u64> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => addr = expect_value(&mut args, "--addr"),
            "--workers" => {
                workers = expect_value(&mut args, "--workers")
                    .parse()
                    .unwrap_or_else(|_| usage("--workers takes a number"))
            }
            "--port-file" => port_file = Some(expect_value(&mut args, "--port-file")),
            "--data-dir" => data_dir = Some(expect_value(&mut args, "--data-dir")),
            "--metrics-interval" => {
                let secs: u64 = expect_value(&mut args, "--metrics-interval")
                    .parse()
                    .unwrap_or_else(|_| usage("--metrics-interval takes seconds"));
                if secs == 0 {
                    usage("--metrics-interval must be at least 1 second");
                }
                metrics_interval = Some(secs);
            }
            "--slow-query-ms" => {
                let ms: u64 = expect_value(&mut args, "--slow-query-ms")
                    .parse()
                    .unwrap_or_else(|_| usage("--slow-query-ms takes milliseconds"));
                slow_query_ms = Some(ms);
            }
            "--help" | "-h" => {
                println!("usage: {USAGE}");
                return;
            }
            other => usage(&format!("unknown argument `{other}`")),
        }
    }

    // chaos harness: CQ_FAULT_PLAN=<point:n[:times],...> injects
    // storage failures at named points (for crash/degradation drills);
    // unset means no injection, exactly as before
    let faults = FaultPlan::from_env().unwrap_or_else(|e| {
        eprintln!("cqd: bad CQ_FAULT_PLAN: {e}");
        std::process::exit(2);
    });
    if faults.is_armed() {
        println!("cqd fault injection armed (CQ_FAULT_PLAN)");
    }

    let state = match &data_dir {
        None => Arc::new(ServerState::new()),
        Some(dir) => {
            let store = Store::open_dir_with_faults(dir, faults).unwrap_or_else(|e| {
                eprintln!("cqd: cannot open data dir {dir}: {e}");
                std::process::exit(1);
            });
            let (state, recovered) = ServerState::recover(store).unwrap_or_else(|e| {
                eprintln!("cqd: recovery from {dir} failed: {e}");
                std::process::exit(1);
            });
            for t in &recovered {
                println!(
                    "cqd recovered {}: {} relations, {} tuples ({} snapshot rows + {} \
                     wal records)",
                    t.name, t.n_relations, t.n_tuples, t.snapshot_rows, t.wal_records
                );
                if t.torn_bytes > 0 {
                    eprintln!(
                        "cqd warning: {}: truncated a torn wal tail ({} bytes) — the \
                         final unacknowledged mutation was discarded",
                        t.name, t.torn_bytes
                    );
                }
                if t.stale_records > 0 {
                    eprintln!(
                        "cqd note: {}: discarded a stale wal ({} records) left by a \
                         crash mid-checkpoint; the snapshot already holds them",
                        t.name, t.stale_records
                    );
                }
            }
            Arc::new(state)
        }
    };

    if let Some(ms) = slow_query_ms {
        state.metrics().slowlog().set_threshold(std::time::Duration::from_millis(ms));
        println!("cqd slow-query log enabled at {ms}ms");
    }
    if let Some(secs) = metrics_interval {
        let state = Arc::clone(&state);
        std::thread::Builder::new()
            .name("cqd-metrics".into())
            .spawn(move || loop {
                std::thread::sleep(std::time::Duration::from_secs(secs));
                for line in cq_server::metrics::render(&state, None) {
                    println!("cqd metric: {line}");
                }
                for entry in state.metrics().slowlog().drain() {
                    println!("cqd {}", entry.render());
                }
            })
            .expect("spawn metrics dumper");
    }

    let server =
        Server::bind_with_state(addr.as_str(), workers, state).unwrap_or_else(|e| {
            eprintln!("cqd: cannot bind {addr}: {e}");
            std::process::exit(1);
        });
    let local = server.local_addr();
    match &data_dir {
        Some(dir) => {
            println!("cqd listening on {local} ({workers} workers, data in {dir})")
        }
        None => println!("cqd listening on {local} ({workers} workers)"),
    }
    if let Some(path) = port_file {
        if let Err(e) = std::fs::write(&path, local.to_string()) {
            eprintln!("cqd: cannot write port file {path}: {e}");
            std::process::exit(1);
        }
    }
    server.wait();
}

const USAGE: &str = "cqd [--addr HOST:PORT] [--workers N] [--port-file PATH] \
                     [--data-dir PATH] [--metrics-interval SECS] [--slow-query-ms N]";

fn expect_value(args: &mut impl Iterator<Item = String>, flag: &str) -> String {
    args.next().unwrap_or_else(|| usage(&format!("{flag} needs a value")))
}

fn usage(msg: &str) -> ! {
    eprintln!("cqd: {msg}\nusage: {USAGE}");
    std::process::exit(2);
}
