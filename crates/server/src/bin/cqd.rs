//! `cqd` — the conjunctive-query daemon.
//!
//! ```text
//! cqd [--addr HOST:PORT] [--workers N] [--port-file PATH] [--data-dir PATH]
//!     [--metrics-interval SECS] [--slow-query-ms N]
//!     [--metrics-history N] [--profile N]
//!     [--group-commit-ms N] [--auto-save-bytes N] [--replica-of HOST:PORT]
//! ```
//!
//! Binds (default `127.0.0.1:7878`; use port 0 for an ephemeral port),
//! prints `cqd listening on <addr>`, optionally writes the resolved
//! address to `--port-file` (so scripts can find an ephemeral port),
//! and serves until killed.
//!
//! `--metrics-interval SECS` dumps the full metrics registry (the same
//! lines `METRICS` returns over the wire, prefixed `cqd metric:`) plus
//! any slow-query log entries accumulated since the previous dump to
//! stdout every SECS seconds. `--slow-query-ms N` enables the
//! slow-query log for queries taking at least N milliseconds; without
//! `--metrics-interval` the entries are still visible over the wire
//! via `METRICS` (the `server slow-queries` gauge) and retained for
//! the periodic dump.
//!
//! `--metrics-history N` sizes the counter-snapshot ring behind
//! `METRICS RATE` (default 8). With `--metrics-interval` the dumper
//! thread also captures a snapshot each tick, so rates are available
//! without a client polling `METRICS RATE`. `--profile N` turns on
//! per-query execution tracing, retaining the last N span trees per
//! tenant for the `PROFILE <db>` command (and `EXPLAIN ANALYZE`
//! results); without it, tracing is compiled to no-ops and `PROFILE`
//! answers `ERR tracing-off`.
//!
//! With `--data-dir`, tenants are durable: every tenant found under
//! the directory is recovered on boot (snapshot + write-ahead-log
//! replay, torn log tails truncated with a warning), wire mutations
//! are write-ahead logged, and `SAVE` checkpoints a tenant into a
//! fresh snapshot. Without it, behavior is exactly the in-memory
//! server of earlier releases.
//!
//! `--group-commit-ms N` turns on group commit: each acked mutation is
//! fsynced, with concurrent committers coalesced into one flush whose
//! leader waits up to N ms (0 = coalesce without waiting) — an ack
//! then means *on stable storage*. `--auto-save-bytes N` checkpoints a
//! tenant automatically once its write-ahead log reaches N bytes, so
//! logs (and recovery time) stay bounded without manual `SAVE`s. Both
//! require `--data-dir`.
//!
//! `--replica-of HOST:PORT` runs this process as a read-only replica:
//! it pulls snapshots and WAL segments from the primary at that
//! address over the `SHIP` verb, applies them continuously into warm
//! in-memory tenants, and serves reads (`DECIDE`/`COUNT`/`ANSWERS`,
//! cursors, `EXPLAIN`, `STATS`, `METRICS`) while refusing mutations
//! with `ERR read-only` naming the primary. Per-tenant replication
//! gauges `replica.lag_bytes` / `replica.epoch` report its position.

use cq_server::replica;
use cq_server::server::Server;
use cq_server::state::{ServerState, WritePolicy};
use cq_storage::{FaultPlan, Store};
use std::sync::Arc;

fn main() {
    let mut addr = "127.0.0.1:7878".to_string();
    let mut workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut port_file: Option<String> = None;
    let mut data_dir: Option<String> = None;
    let mut metrics_interval: Option<u64> = None;
    let mut slow_query_ms: Option<u64> = None;
    let mut metrics_history: Option<usize> = None;
    let mut profile: Option<usize> = None;
    let mut group_commit_ms: Option<u64> = None;
    let mut auto_save_bytes: Option<u64> = None;
    let mut replica_of: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => addr = expect_value(&mut args, "--addr"),
            "--workers" => {
                workers = expect_value(&mut args, "--workers")
                    .parse()
                    .unwrap_or_else(|_| usage("--workers takes a number"))
            }
            "--port-file" => port_file = Some(expect_value(&mut args, "--port-file")),
            "--data-dir" => data_dir = Some(expect_value(&mut args, "--data-dir")),
            "--metrics-interval" => {
                let secs: u64 = expect_value(&mut args, "--metrics-interval")
                    .parse()
                    .unwrap_or_else(|_| usage("--metrics-interval takes seconds"));
                if secs == 0 {
                    usage("--metrics-interval must be at least 1 second");
                }
                metrics_interval = Some(secs);
            }
            "--slow-query-ms" => {
                let ms: u64 = expect_value(&mut args, "--slow-query-ms")
                    .parse()
                    .unwrap_or_else(|_| usage("--slow-query-ms takes milliseconds"));
                slow_query_ms = Some(ms);
            }
            "--metrics-history" => {
                let n: usize = expect_value(&mut args, "--metrics-history")
                    .parse()
                    .unwrap_or_else(|_| usage("--metrics-history takes a count"));
                if n < 2 {
                    usage("--metrics-history needs at least 2 snapshots to rate");
                }
                metrics_history = Some(n);
            }
            "--profile" => {
                let n: usize = expect_value(&mut args, "--profile")
                    .parse()
                    .unwrap_or_else(|_| usage("--profile takes a trace count"));
                if n == 0 {
                    usage("--profile must retain at least 1 trace");
                }
                profile = Some(n);
            }
            "--group-commit-ms" => {
                let ms: u64 = expect_value(&mut args, "--group-commit-ms")
                    .parse()
                    .unwrap_or_else(|_| usage("--group-commit-ms takes milliseconds"));
                group_commit_ms = Some(ms);
            }
            "--auto-save-bytes" => {
                let bytes: u64 = expect_value(&mut args, "--auto-save-bytes")
                    .parse()
                    .unwrap_or_else(|_| usage("--auto-save-bytes takes a byte count"));
                if bytes == 0 {
                    usage("--auto-save-bytes must be at least 1");
                }
                auto_save_bytes = Some(bytes);
            }
            "--replica-of" => {
                replica_of = Some(expect_value(&mut args, "--replica-of"));
            }
            "--help" | "-h" => {
                println!("usage: {USAGE}");
                return;
            }
            other => usage(&format!("unknown argument `{other}`")),
        }
    }

    if replica_of.is_some() {
        // a replica's state is a mirror of the primary's, rebuilt on
        // boot by the puller — combining it with local durability (or
        // local durability knobs) would create a second write source
        if data_dir.is_some() {
            usage("--replica-of runs in-memory; it conflicts with --data-dir");
        }
        if group_commit_ms.is_some() || auto_save_bytes.is_some() {
            usage("--group-commit-ms / --auto-save-bytes need --data-dir, which a replica cannot have");
        }
    }
    if data_dir.is_none() && (group_commit_ms.is_some() || auto_save_bytes.is_some()) {
        usage("--group-commit-ms / --auto-save-bytes require --data-dir");
    }

    // chaos harness: CQ_FAULT_PLAN=<point:n[:times],...> injects
    // storage failures at named points (for crash/degradation drills);
    // unset means no injection, exactly as before
    let faults = FaultPlan::from_env().unwrap_or_else(|e| {
        eprintln!("cqd: bad CQ_FAULT_PLAN: {e}");
        std::process::exit(2);
    });
    if faults.is_armed() {
        println!("cqd fault injection armed (CQ_FAULT_PLAN)");
    }

    let state = match &data_dir {
        None => Arc::new(ServerState::new()),
        Some(dir) => {
            let store = Store::open_dir_with_faults(dir, faults).unwrap_or_else(|e| {
                eprintln!("cqd: cannot open data dir {dir}: {e}");
                std::process::exit(1);
            });
            let (state, recovered) = ServerState::recover(store).unwrap_or_else(|e| {
                eprintln!("cqd: recovery from {dir} failed: {e}");
                std::process::exit(1);
            });
            for t in &recovered {
                println!(
                    "cqd recovered {}: {} relations, {} tuples ({} snapshot rows + {} \
                     wal records)",
                    t.name, t.n_relations, t.n_tuples, t.snapshot_rows, t.wal_records
                );
                if t.torn_bytes > 0 {
                    eprintln!(
                        "cqd warning: {}: truncated a torn wal tail ({} bytes) — the \
                         final unacknowledged mutation was discarded",
                        t.name, t.torn_bytes
                    );
                }
                if t.stale_records > 0 {
                    eprintln!(
                        "cqd note: {}: discarded a stale wal ({} records) left by a \
                         crash mid-checkpoint; the snapshot already holds them",
                        t.name, t.stale_records
                    );
                }
            }
            Arc::new(state)
        }
    };

    state.set_write_policy(WritePolicy {
        group_commit: group_commit_ms.map(std::time::Duration::from_millis),
        auto_save_bytes,
    });
    if let Some(ms) = group_commit_ms {
        println!("cqd group commit enabled ({ms}ms window)");
    }
    if let Some(bytes) = auto_save_bytes {
        println!("cqd auto-checkpoint enabled at {bytes} wal bytes");
    }
    let _replica = replica_of.as_ref().map(|primary| {
        println!("cqd replicating from {primary} (read-only)");
        replica::start(Arc::clone(&state), primary.clone(), replica::DEFAULT_POLL)
    });

    if let Some(ms) = slow_query_ms {
        state.metrics().slowlog().set_threshold(std::time::Duration::from_millis(ms));
        println!("cqd slow-query log enabled at {ms}ms");
    }
    if let Some(n) = metrics_history {
        state.metrics().history().set_capacity(n);
        println!("cqd metrics history ring sized to {n} snapshots");
    }
    if let Some(n) = profile {
        state.metrics().set_profile_capacity(n);
        println!("cqd per-query tracing enabled ({n} traces per tenant)");
    }
    if let Some(secs) = metrics_interval {
        let state = Arc::clone(&state);
        std::thread::Builder::new()
            .name("cqd-metrics".into())
            .spawn(move || loop {
                std::thread::sleep(std::time::Duration::from_secs(secs));
                // feed the rate ring on the same cadence: every dump
                // tick is a snapshot `METRICS RATE` can difference
                state.metrics().capture_history();
                for line in cq_server::metrics::render(&state, None) {
                    println!("cqd metric: {line}");
                }
                for entry in state.metrics().slowlog().drain() {
                    println!("cqd {}", entry.render());
                }
            })
            .expect("spawn metrics dumper");
    }

    let server =
        Server::bind_with_state(addr.as_str(), workers, state).unwrap_or_else(|e| {
            eprintln!("cqd: cannot bind {addr}: {e}");
            std::process::exit(1);
        });
    let local = server.local_addr();
    match &data_dir {
        Some(dir) => {
            println!("cqd listening on {local} ({workers} workers, data in {dir})")
        }
        None => println!("cqd listening on {local} ({workers} workers)"),
    }
    if let Some(path) = port_file {
        if let Err(e) = std::fs::write(&path, local.to_string()) {
            eprintln!("cqd: cannot write port file {path}: {e}");
            std::process::exit(1);
        }
    }
    server.wait();
}

const USAGE: &str = "cqd [--addr HOST:PORT] [--workers N] [--port-file PATH] \
                     [--data-dir PATH] [--metrics-interval SECS] [--slow-query-ms N] \
                     [--metrics-history N] [--profile N] \
                     [--group-commit-ms N] [--auto-save-bytes N] \
                     [--replica-of HOST:PORT]";

fn expect_value(args: &mut impl Iterator<Item = String>, flag: &str) -> String {
    args.next().unwrap_or_else(|| usage(&format!("{flag} needs a value")))
}

fn usage(msg: &str) -> ! {
    eprintln!("cqd: {msg}\nusage: {USAGE}");
    std::process::exit(2);
}
