//! `cqd` — the conjunctive-query daemon.
//!
//! ```text
//! cqd [--addr HOST:PORT] [--workers N] [--port-file PATH]
//! ```
//!
//! Binds (default `127.0.0.1:7878`; use port 0 for an ephemeral port),
//! prints `cqd listening on <addr>`, optionally writes the resolved
//! address to `--port-file` (so scripts can find an ephemeral port),
//! and serves until killed.

use cq_server::server::Server;

fn main() {
    let mut addr = "127.0.0.1:7878".to_string();
    let mut workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut port_file: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => addr = expect_value(&mut args, "--addr"),
            "--workers" => {
                workers = expect_value(&mut args, "--workers")
                    .parse()
                    .unwrap_or_else(|_| usage("--workers takes a number"))
            }
            "--port-file" => port_file = Some(expect_value(&mut args, "--port-file")),
            "--help" | "-h" => {
                println!(
                    "usage: cqd [--addr HOST:PORT] [--workers N] [--port-file PATH]"
                );
                return;
            }
            other => usage(&format!("unknown argument `{other}`")),
        }
    }

    let server = Server::bind(addr.as_str(), workers).unwrap_or_else(|e| {
        eprintln!("cqd: cannot bind {addr}: {e}");
        std::process::exit(1);
    });
    let local = server.local_addr();
    println!("cqd listening on {local} ({workers} workers)");
    if let Some(path) = port_file {
        if let Err(e) = std::fs::write(&path, local.to_string()) {
            eprintln!("cqd: cannot write port file {path}: {e}");
            std::process::exit(1);
        }
    }
    server.wait();
}

fn expect_value(args: &mut impl Iterator<Item = String>, flag: &str) -> String {
    args.next().unwrap_or_else(|| usage(&format!("{flag} needs a value")))
}

fn usage(msg: &str) -> ! {
    eprintln!(
        "cqd: {msg}\nusage: cqd [--addr HOST:PORT] [--workers N] [--port-file PATH]"
    );
    std::process::exit(2);
}
