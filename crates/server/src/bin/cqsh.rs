//! `cqsh` — the interactive / scriptable shell for `cqd`.
//!
//! ```text
//! cqsh [--addr HOST:PORT]
//! ```
//!
//! Reads commands from stdin and prints replies in wire form. On a
//! terminal it shows a `cq> ` prompt; when stdin is piped (scripted
//! sessions, the CI smoke test) it instead echoes each sent line
//! prefixed `> `, so the full transcript — commands and replies — is
//! reproducible and diffable against a golden file.
//!
//! Blank lines and `#` comment lines are skipped client-side. `LOAD`
//! and `BATCH` open blocks: the lines up to `END` are forwarded
//! silently (the server acks the opener and replies once at `END`).
//! Exits 0 on a clean session (even if commands returned `ERR` — those
//! are part of the transcript), non-zero on connection failure.
//!
//! `FETCHALL <cursor-id> [page-size]` is a client-side convenience:
//! it loops `FETCH` in pages (default 512 rows) until `eof`, printing
//! rows as they arrive — constant memory on both ends — and finishes
//! with one `OK <total> rows total` line (or the server's error reply,
//! e.g. `ERR stale-cursor`, if the iteration is cut short).

use cq_server::client::Client;
use cq_server::protocol::{Reply, END_KEYWORD};
use std::io::{BufRead, IsTerminal, Write};
use std::time::Duration;

fn main() {
    let mut addr = "127.0.0.1:7878".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => {
                addr = args.next().unwrap_or_else(|| {
                    eprintln!("cqsh: --addr needs a value");
                    std::process::exit(2);
                })
            }
            "--help" | "-h" => {
                println!("usage: cqsh [--addr HOST:PORT]");
                return;
            }
            other => {
                eprintln!(
                    "cqsh: unknown argument `{other}`\nusage: cqsh [--addr HOST:PORT]"
                );
                std::process::exit(2);
            }
        }
    }

    let mut client = Client::connect_with_retry(addr.as_str(), Duration::from_secs(10))
        .unwrap_or_else(|e| {
            eprintln!("cqsh: cannot connect to {addr}: {e}");
            std::process::exit(1);
        });

    let stdin = std::io::stdin();
    let interactive = stdin.is_terminal();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let mut in_block = false;

    if interactive {
        print_prompt(&mut out);
    }
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        let trimmed = line.trim();
        // comments and blank lines are skipped everywhere — including
        // inside LOAD/BATCH blocks, where a forwarded `#` line would
        // otherwise be rejected as a bad row/item
        if trimmed.is_empty() || trimmed.starts_with('#') {
            if interactive {
                print_prompt(&mut out);
            }
            continue;
        }
        if !interactive {
            writeln!(out, "> {trimmed}").ok();
        }
        if in_block {
            // rows/items are consumed silently; END closes with a reply
            if client.send_line(trimmed).is_err() {
                die_disconnected();
            }
            if trimmed.eq_ignore_ascii_case(END_KEYWORD) {
                in_block = false;
                match client.read_reply() {
                    Ok(r) => print_reply(&mut out, &r),
                    Err(_) => die_disconnected(),
                }
            }
        } else if trimmed
            .split_whitespace()
            .next()
            .is_some_and(|v| v.eq_ignore_ascii_case("FETCHALL"))
        {
            fetchall(&mut client, &mut out, trimmed);
        } else {
            let reply = match client.request(trimmed) {
                Ok(r) => r,
                Err(_) => die_disconnected(),
            };
            print_reply(&mut out, &reply);
            let verb = trimmed.split_whitespace().next().unwrap_or("");
            let opens_block =
                verb.eq_ignore_ascii_case("LOAD") || verb.eq_ignore_ascii_case("BATCH");
            if opens_block && reply.is_ok() {
                in_block = true;
            }
            if verb.eq_ignore_ascii_case("QUIT") {
                return;
            }
        }
        if interactive && !in_block {
            print_prompt(&mut out);
        }
    }
}

/// The `FETCHALL <id> [page]` meta-command: page a cursor to eof.
fn fetchall(client: &mut Client, out: &mut impl Write, line: &str) {
    let mut words = line.split_whitespace().skip(1);
    let id = words.next().and_then(|w| w.parse::<u64>().ok());
    let page = match words.next() {
        None => Some(512),
        Some(w) => w.parse::<u64>().ok().filter(|&p| p > 0),
    };
    let (Some(id), Some(page)) = (id, page) else {
        writeln!(out, "ERR usage: FETCHALL <cursor-id> [page-size]").ok();
        return;
    };
    let outcome = client.for_each_page(id, page, |rows| {
        for row in rows {
            writeln!(out, "* {row}").ok();
        }
    });
    match outcome {
        Ok(Ok(total)) => {
            writeln!(out, "OK {total} rows total").ok();
            out.flush().ok();
        }
        Ok(Err(reply)) => print_reply(out, &reply),
        Err(_) => die_disconnected(),
    }
}

fn print_reply(out: &mut impl Write, reply: &Reply) {
    let mut buf = Vec::new();
    reply.write_to(&mut buf).expect("writing to a Vec cannot fail");
    out.write_all(&buf).ok();
    out.flush().ok();
}

fn print_prompt(out: &mut impl Write) {
    write!(out, "cq> ").ok();
    out.flush().ok();
}

fn die_disconnected() -> ! {
    eprintln!("cqsh: server closed the connection");
    std::process::exit(1);
}
