//! `cqsh` — the interactive / scriptable shell for `cqd`.
//!
//! ```text
//! cqsh [--addr HOST:PORT]
//! ```
//!
//! Reads commands from stdin and prints replies in wire form. On a
//! terminal it shows a `cq> ` prompt; when stdin is piped (scripted
//! sessions, the CI smoke test) it instead echoes each sent line
//! prefixed `> `, so the full transcript — commands and replies — is
//! reproducible and diffable against a golden file.
//!
//! Blank lines and `#` comment lines are skipped client-side. `LOAD`
//! and `BATCH` open blocks: the lines up to `END` are forwarded
//! silently (the server acks the opener and replies once at `END`).
//! Exits 0 on a clean session (even if commands returned `ERR` — those
//! are part of the transcript), non-zero on connection failure.
//!
//! `FETCHALL <cursor-id> [page-size]` is a client-side convenience:
//! it loops `FETCH` in pages (default 512 rows) until `eof`, printing
//! rows as they arrive — constant memory on both ends — and finishes
//! with one `OK <total> rows total` line (or the server's error reply,
//! e.g. `ERR stale-cursor`, if the iteration is cut short).
//!
//! `PROFILE <db>` replies are pretty-printed: the wire's flat
//! `trace …` / `span …` lines become an indented span tree with each
//! span's share of its trace total. `ERR` replies (e.g. `tracing-off`)
//! pass through in wire form.

use cq_server::client::Client;
use cq_server::protocol::{Reply, END_KEYWORD};
use std::io::{BufRead, IsTerminal, Write};
use std::time::Duration;

fn main() {
    let mut addr = "127.0.0.1:7878".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => {
                addr = args.next().unwrap_or_else(|| {
                    eprintln!("cqsh: --addr needs a value");
                    std::process::exit(2);
                })
            }
            "--help" | "-h" => {
                println!("usage: cqsh [--addr HOST:PORT]");
                return;
            }
            other => {
                eprintln!(
                    "cqsh: unknown argument `{other}`\nusage: cqsh [--addr HOST:PORT]"
                );
                std::process::exit(2);
            }
        }
    }

    let mut client = Client::connect_with_retry(addr.as_str(), Duration::from_secs(10))
        .unwrap_or_else(|e| {
            eprintln!("cqsh: cannot connect to {addr}: {e}");
            std::process::exit(1);
        });

    let stdin = std::io::stdin();
    let interactive = stdin.is_terminal();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let mut in_block = false;

    if interactive {
        print_prompt(&mut out);
    }
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        let trimmed = line.trim();
        // comments and blank lines are skipped everywhere — including
        // inside LOAD/BATCH blocks, where a forwarded `#` line would
        // otherwise be rejected as a bad row/item
        if trimmed.is_empty() || trimmed.starts_with('#') {
            if interactive {
                print_prompt(&mut out);
            }
            continue;
        }
        if !interactive {
            writeln!(out, "> {trimmed}").ok();
        }
        if in_block {
            // rows/items are consumed silently; END closes with a reply
            if client.send_line(trimmed).is_err() {
                die_disconnected();
            }
            if trimmed.eq_ignore_ascii_case(END_KEYWORD) {
                in_block = false;
                match client.read_reply() {
                    Ok(r) => print_reply(&mut out, &r),
                    Err(_) => die_disconnected(),
                }
            }
        } else if trimmed
            .split_whitespace()
            .next()
            .is_some_and(|v| v.eq_ignore_ascii_case("FETCHALL"))
        {
            fetchall(&mut client, &mut out, trimmed);
        } else {
            let reply = match client.request(trimmed) {
                Ok(r) => r,
                Err(_) => die_disconnected(),
            };
            let verb = trimmed.split_whitespace().next().unwrap_or("");
            if verb.eq_ignore_ascii_case("PROFILE") && reply.is_ok() {
                print_profile(&mut out, &reply);
            } else {
                print_reply(&mut out, &reply);
            }
            let opens_block =
                verb.eq_ignore_ascii_case("LOAD") || verb.eq_ignore_ascii_case("BATCH");
            if opens_block && reply.is_ok() {
                in_block = true;
            }
            if verb.eq_ignore_ascii_case("QUIT") {
                return;
            }
        }
        if interactive && !in_block {
            print_prompt(&mut out);
        }
    }
}

/// The `FETCHALL <id> [page]` meta-command: page a cursor to eof.
fn fetchall(client: &mut Client, out: &mut impl Write, line: &str) {
    let mut words = line.split_whitespace().skip(1);
    let id = words.next().and_then(|w| w.parse::<u64>().ok());
    let page = match words.next() {
        None => Some(512),
        Some(w) => w.parse::<u64>().ok().filter(|&p| p > 0),
    };
    let (Some(id), Some(page)) = (id, page) else {
        writeln!(out, "ERR usage: FETCHALL <cursor-id> [page-size]").ok();
        return;
    };
    let outcome = client.for_each_page(id, page, |rows| {
        for row in rows {
            writeln!(out, "* {row}").ok();
        }
    });
    match outcome {
        Ok(Ok(total)) => {
            writeln!(out, "OK {total} rows total").ok();
            out.flush().ok();
        }
        Ok(Err(reply)) => print_reply(out, &reply),
        Err(_) => die_disconnected(),
    }
}

/// Pretty-print a `PROFILE` reply: each `trace …` header becomes a
/// one-line summary, each `span …` line an indented tree row with the
/// span's share of the trace total. Unrecognized data lines pass
/// through in wire form, so a newer server never breaks the shell.
fn print_profile(out: &mut impl Write, reply: &Reply) {
    let mut total_ns: u128 = 0;
    for line in &reply.data {
        if let Some(rest) = line.strip_prefix("trace ") {
            total_ns = field(rest, "total-ns=").and_then(|v| v.parse().ok()).unwrap_or(0);
            let db = field(rest, "db=").unwrap_or("?");
            let spans = field(rest, "spans=").unwrap_or("?");
            let query = rest.split_once("query=").map_or("", |(_, q)| q);
            writeln!(
                out,
                "profile {db}: {} across {spans} spans, query {query}",
                fmt_ns(total_ns)
            )
            .ok();
        } else if let Some(rest) = line.strip_prefix("span ") {
            let depth: usize =
                field(rest, "depth=").and_then(|v| v.parse().ok()).unwrap_or(0);
            let name = field(rest, "name=").unwrap_or("?");
            let ns: u128 = field(rest, "ns=").and_then(|v| v.parse().ok()).unwrap_or(0);
            let pct =
                if total_ns > 0 { 100.0 * ns as f64 / total_ns as f64 } else { 0.0 };
            let attrs = rest
                .split_whitespace()
                .filter(|t| {
                    !t.starts_with("depth=")
                        && !t.starts_with("name=")
                        && !t.starts_with("ns=")
                })
                .collect::<Vec<_>>()
                .join(" ");
            let indent = "  ".repeat(depth + 1);
            let tail = if attrs.is_empty() { String::new() } else { format!(" {attrs}") };
            writeln!(out, "{indent}{name} {} ({pct:.0}%){tail}", fmt_ns(ns)).ok();
        } else {
            writeln!(out, "* {line}").ok();
        }
    }
    writeln!(out, "{}", reply.terminal).ok();
    out.flush().ok();
}

/// The value of a `key=` token in a space-separated line.
fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    line.split_whitespace().find_map(|t| t.strip_prefix(key))
}

/// Nanoseconds as milliseconds with microsecond precision.
fn fmt_ns(ns: u128) -> String {
    format!("{:.3}ms", ns as f64 / 1e6)
}

fn print_reply(out: &mut impl Write, reply: &Reply) {
    let mut buf = Vec::new();
    reply.write_to(&mut buf).expect("writing to a Vec cannot fail");
    out.write_all(&buf).ok();
    out.flush().ok();
}

fn print_prompt(out: &mut impl Write) {
    write!(out, "cq> ").ok();
    out.flush().ok();
}

fn die_disconnected() -> ! {
    eprintln!("cqsh: server closed the connection");
    std::process::exit(1);
}
