//! Server-side observability: the engine-wide metrics registry, the
//! slow-query log, and the `METRICS` rendering pipeline.
//!
//! ## Scope and name taxonomy
//!
//! Metrics live in named scopes of one process-wide [`Registry`]:
//!
//! * `server` — cross-tenant state: commands without a tenant target
//!   (`PING`, `CREATE DB`, `USE`, `STATS`, …), error counts by wire
//!   kind (`errors.<kind>`), connection and worker-pool gauges, and
//!   the process-wide plan-cache gauges.
//! * `db.<tenant>` — one scope per tenant: per-command counters and
//!   latency histograms (`cmd.<verb>.calls` / `cmd.<verb>.latency`),
//!   per-plan-operator execution counters and latencies
//!   (`op.<slug>.calls` / `op.<slug>.latency`), budget rejections
//!   (`budget.rejections`), and gauges mirrored from the tenant's
//!   catalog ([`CatalogStats`](cq_data::CatalogStats)) and WAL
//!   ([`WalStats`](cq_storage::WalStats)).
//!
//! ## Who records, who is polled
//!
//! Only this crate depends on `cq-obs`. Hot-path events the server
//! itself observes (commands, query execution, errors, rejections) are
//! *pushed* through cached `Arc` handles — a [`SessionMetrics`] keeps
//! one handle per `(scope, name)` pair, so steady-state recording is a
//! relaxed atomic op with no lock and no string formatting. Counters
//! that other crates already maintain (catalog memo stats, WAL write
//! stats, plan-cache stats) are *pulled* into gauges by [`refresh`]
//! just before a render, keeping `cq-data`, `cq-storage`, and
//! `cq-planner` free of any observability dependency.

use crate::state::ServerState;
use cq_obs::{
    Counter, Histogram, HistoryRing, QueryTrace, Registry, Scope, SlowQueryLog,
};
use cq_planner::eval;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Name of the cross-tenant scope.
pub const SERVER_SCOPE: &str = "server";

/// Scope name for a tenant's metrics.
pub fn tenant_scope(db: &str) -> String {
    format!("db.{db}")
}

/// Metric-name slug for a plan operator's stable display name
/// (lowercased, runs of non-alphanumerics collapsed to `-`, any
/// parenthetical qualifier dropped): `"generic join (worst-case
/// optimal)"` → `"generic-join"`.
pub fn op_slug(op_name: &str) -> String {
    let head = op_name.split('(').next().unwrap_or(op_name);
    let mut slug = String::with_capacity(head.len());
    for part in head.split(|c: char| !c.is_ascii_alphanumeric()).filter(|p| !p.is_empty())
    {
        if !slug.is_empty() {
            slug.push('-');
        }
        slug.push_str(&part.to_ascii_lowercase());
    }
    slug
}

/// The process-wide observability state owned by a `ServerState`.
#[derive(Debug)]
pub struct ServerMetrics {
    registry: Registry,
    slowlog: SlowQueryLog,
    /// Periodic counter snapshots; `METRICS RATE` differences two of
    /// them into windowed per-second rates.
    history: HistoryRing,
    /// Per-query trace retention: 0 disables tracing entirely (the
    /// default — spans cost nothing when no sink is installed), N keeps
    /// the last N [`QueryTrace`]s per tenant for `PROFILE`.
    profile_capacity: AtomicUsize,
    profiles: Mutex<BTreeMap<String, VecDeque<QueryTrace>>>,
}

/// Retained slow-query entries (the log's ring capacity).
const SLOWLOG_CAPACITY: usize = 128;

/// Default metrics-history snapshots retained (`--metrics-history`
/// overrides).
const HISTORY_CAPACITY: usize = 8;

impl Default for ServerMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl ServerMetrics {
    pub fn new() -> ServerMetrics {
        ServerMetrics {
            registry: Registry::new(),
            slowlog: SlowQueryLog::new(SLOWLOG_CAPACITY),
            history: HistoryRing::new(HISTORY_CAPACITY),
            profile_capacity: AtomicUsize::new(0),
            profiles: Mutex::new(BTreeMap::new()),
        }
    }

    /// The underlying registry (for gauges wired directly into the
    /// runtime, e.g. worker-pool occupancy).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The threshold-gated slow-query log.
    pub fn slowlog(&self) -> &SlowQueryLog {
        &self.slowlog
    }

    /// The cross-tenant scope.
    pub fn server_scope(&self) -> Arc<Scope> {
        self.registry.scope(SERVER_SCOPE)
    }

    /// Count one error reply by wire kind (`errors.<kind>`).
    pub fn record_error(&self, kind: &str) {
        self.server_scope().counter(&format!("errors.{kind}")).inc();
    }

    /// Forget a dropped tenant's scope (a recreated tenant starts
    /// from zero rather than inheriting a dead namesake's counters).
    pub fn drop_tenant(&self, db: &str) {
        self.registry.drop_scope(&tenant_scope(db));
        self.profiles.lock().unwrap().remove(db);
    }

    /// The counter-snapshot history ring behind `METRICS RATE`.
    pub fn history(&self) -> &HistoryRing {
        &self.history
    }

    /// Capture a counter snapshot into the history ring.
    pub fn capture_history(&self) {
        self.history.capture(&self.registry);
    }

    /// How many traces `PROFILE` retains per tenant (0 = tracing off).
    pub fn profile_capacity(&self) -> usize {
        self.profile_capacity.load(Ordering::Relaxed)
    }

    /// Enable (or resize) per-tenant trace retention. Shrinking evicts
    /// oldest traces; 0 turns tracing back off and clears everything.
    pub fn set_profile_capacity(&self, cap: usize) {
        self.profile_capacity.store(cap, Ordering::Relaxed);
        let mut rings = self.profiles.lock().unwrap();
        if cap == 0 {
            rings.clear();
        } else {
            for ring in rings.values_mut() {
                while ring.len() > cap {
                    ring.pop_front();
                }
            }
        }
    }

    /// Is per-query tracing on (`PROFILE` retention > 0)?
    pub fn profiling(&self) -> bool {
        self.profile_capacity() > 0
    }

    /// Retain a finished trace for `PROFILE <db>` (evicting the oldest
    /// past capacity). No-op when tracing is off.
    pub fn push_trace(&self, trace: QueryTrace) {
        let cap = self.profile_capacity();
        if cap == 0 {
            return;
        }
        let mut rings = self.profiles.lock().unwrap();
        let ring = rings.entry(trace.db.clone()).or_default();
        while ring.len() >= cap {
            ring.pop_front();
        }
        ring.push_back(trace);
    }

    /// A tenant's retained traces, oldest first.
    pub fn recent_traces(&self, db: &str) -> Vec<QueryTrace> {
        self.profiles
            .lock()
            .unwrap()
            .get(db)
            .map(|ring| ring.iter().cloned().collect())
            .unwrap_or_default()
    }
}

/// Per-session cache of metric handles, keyed by `(scope, name)`.
///
/// The name side is `&'static str`-compatible by construction: command
/// verbs and op slugs come from small fixed sets, so the map stays
/// tiny. A session is single-threaded, so no locking.
#[derive(Debug)]
pub struct SessionMetrics {
    shared: Arc<ServerMetrics>,
    handles: HashMap<(String, String), (Arc<Counter>, Arc<Histogram>)>,
}

impl SessionMetrics {
    pub fn new(shared: Arc<ServerMetrics>) -> SessionMetrics {
        SessionMetrics { shared, handles: HashMap::new() }
    }

    /// The shared server metrics.
    pub fn shared(&self) -> &ServerMetrics {
        &self.shared
    }

    fn pair(&mut self, scope: &str, stem: &str) -> &(Arc<Counter>, Arc<Histogram>) {
        self.handles.entry((scope.to_string(), stem.to_string())).or_insert_with(|| {
            let s = self.shared.registry.scope(scope);
            (s.counter(&format!("{stem}.calls")), s.histogram(&format!("{stem}.latency")))
        })
    }

    /// Record one command: `cmd.<verb>.calls` / `cmd.<verb>.latency`
    /// in `scope` (the `server` scope or a tenant's).
    pub fn record_cmd(&mut self, scope: &str, verb: &str, elapsed: Duration) {
        let (calls, latency) = self.pair(scope, &format!("cmd.{verb}"));
        calls.inc();
        latency.record_duration(elapsed);
    }

    /// Record one plan-operator execution in a tenant's scope:
    /// `op.<slug>.calls` / `op.<slug>.latency`.
    pub fn record_op(&mut self, db: &str, op_name: &str, elapsed: Duration) {
        let scope = tenant_scope(db);
        let (calls, latency) = self.pair(&scope, &format!("op.{}", op_slug(op_name)));
        calls.inc();
        latency.record_duration(elapsed);
    }

    /// Count one error reply on a tenant-addressed command in the
    /// tenant's own scope (`errors`) — the per-kind breakdown stays
    /// server-wide ([`ServerMetrics::record_error`]); this counter
    /// feeds the tenant's `err-rate` line in `STATS <name>`.
    pub fn record_tenant_error(&mut self, db: &str) {
        let scope = self.shared.registry.scope(&tenant_scope(db));
        scope.counter("errors").inc();
    }

    /// Count one admission-control rejection for a tenant.
    pub fn record_rejection(&mut self, db: &str) {
        let scope = self.shared.registry.scope(&tenant_scope(db));
        scope.counter("budget.rejections").inc();
    }

    /// Count one deadline-exceeded evaluation (`SET TIMEOUT` trip).
    pub fn record_timeout(&mut self, db: &str) {
        let scope = self.shared.registry.scope(&tenant_scope(db));
        scope.counter("timeouts").inc();
    }

    /// Count one evaluation cancelled because the client disconnected.
    pub fn record_cancellation(&mut self, db: &str) {
        let scope = self.shared.registry.scope(&tenant_scope(db));
        scope.counter("cancellations").inc();
    }

    /// Count `n` answer rows streamed to a client (`answers.rows`) —
    /// one increment per chunk, not per row, so the hot drain loop
    /// touches the counter O(result/chunk) times.
    pub fn record_answer_rows(&mut self, db: &str, n: u64) {
        let scope = self.shared.registry.scope(&tenant_scope(db));
        scope.counter("answers.rows").add(n);
    }

    /// Record the time from query receipt to the first answer row
    /// reaching the wire (`answers.ttfr.latency`). The companion
    /// counter counts streamed responses that produced ≥ 1 row.
    pub fn record_time_to_first_row(&mut self, db: &str, elapsed: Duration) {
        let scope = tenant_scope(db);
        let (calls, latency) = self.pair(&scope, "answers.ttfr");
        calls.inc();
        latency.record_duration(elapsed);
    }

    /// A cursor was opened: bump the `cursors.open` gauge.
    pub fn record_cursor_opened(&mut self, db: &str) {
        let scope = self.shared.registry.scope(&tenant_scope(db));
        scope.gauge("cursors.open").add(1);
    }

    /// A cursor was released (CLOSE, session end, or staleness): drop
    /// the `cursors.open` gauge; staleness also counts in
    /// `cursors.stale`.
    pub fn record_cursor_closed(&mut self, db: &str, stale: bool) {
        let scope = self.shared.registry.scope(&tenant_scope(db));
        scope.gauge("cursors.open").sub(1);
        if stale {
            scope.counter("cursors.stale").inc();
        }
    }
}

/// Pull pulled-not-pushed values into gauges: per-tenant catalog and
/// WAL stats, cross-tenant plan-cache stats, and the tenant count.
/// Called just before a render so gauge values are current without
/// any hot-path cost. `db` limits the refresh to one tenant.
pub fn refresh(state: &ServerState, db: Option<&str>) {
    let metrics = state.metrics();
    if db.is_none() {
        let server = metrics.server_scope();
        server.gauge("tenants").set(state.n_tenants() as u64);
        let (shapes, cache) =
            eval::with_global_planner(|p| (p.cache().len(), p.cache().stats()));
        server.gauge("plan-cache.shapes").set(shapes as u64);
        server.gauge("plan-cache.hits").set(cache.hits);
        server.gauge("plan-cache.misses").set(cache.misses);
        server.gauge("plan-cache.uncacheable").set(cache.uncacheable);
        server.gauge("slow-queries").set(metrics.slowlog().total());
        // injected storage faults (0 on an in-memory server, which has
        // no store to inject into — the gauge exists in both modes so
        // transcripts stay mode-independent)
        let injected = state.store().map_or(0, |s| s.fault_plan().injected());
        server.gauge("storage.faults.injected").set(injected);
    }
    for tenant in state.tenants() {
        if db.is_some_and(|want| want != tenant.name()) {
            continue;
        }
        let scope = metrics.registry().scope(&tenant_scope(tenant.name()));
        let (cat, wal) = tenant.read_meta();
        scope.gauge("catalog.hits").set(cat.hits);
        scope.gauge("catalog.misses").set(cat.misses);
        scope.gauge("catalog.invalidations").set(cat.invalidations);
        scope.gauge("catalog.cap-evictions").set(cat.cap_evictions);
        scope.gauge("catalog.memo.views").set(cat.views as u64);
        scope.gauge("catalog.memo.hash-indexes").set(cat.hash_indexes as u64);
        scope.gauge("catalog.memo.artifacts").set(cat.artifacts as u64);
        if let Some(wal) = wal {
            scope.gauge("storage.wal.appends").set(wal.appends);
            scope.gauge("storage.wal.appended-bytes").set(wal.appended_bytes);
            scope.gauge("storage.wal.syncs").set(wal.syncs);
        }
        if let Some(poisoned) = tenant.wal_poisoned() {
            scope.gauge("storage.wal.poisoned").set(poisoned as u64);
        }
        scope.gauge("degraded").set(tenant.is_degraded() as u64);
    }
}

/// Refresh derived gauges and render the registry: all scopes, or only
/// `db.<db>` when a tenant is named.
pub fn render(state: &ServerState, db: Option<&str>) -> Vec<String> {
    refresh(state, db);
    let filter = db.map(tenant_scope);
    state.metrics().registry().render(filter.as_deref())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_slugs_are_stable_and_ascii() {
        assert_eq!(op_slug("generic join (worst-case optimal)"), "generic-join");
        assert_eq!(op_slug("Yannakakis semijoin sweep"), "yannakakis-semijoin-sweep");
        assert_eq!(op_slug("counting DP over join tree"), "counting-dp-over-join-tree");
        assert_eq!(op_slug("trivially empty"), "trivially-empty");
    }

    #[test]
    fn session_cache_reuses_handles() {
        let shared = Arc::new(ServerMetrics::new());
        let mut sm = SessionMetrics::new(Arc::clone(&shared));
        sm.record_cmd("db.t", "count", Duration::from_micros(5));
        sm.record_cmd("db.t", "count", Duration::from_micros(7));
        sm.record_rejection("t");
        assert_eq!(sm.handles.len(), 1, "one (scope, stem) pair cached");
        let scope = shared.registry().scope("db.t");
        assert_eq!(scope.counter_value("cmd.count.calls"), Some(2));
        assert_eq!(scope.counter_value("budget.rejections"), Some(1));
    }

    #[test]
    fn dropping_a_tenant_clears_its_scope() {
        let m = ServerMetrics::new();
        m.registry().scope(&tenant_scope("gone")).counter("cmd.ping.calls").inc();
        m.drop_tenant("gone");
        assert!(m.registry().render(Some("db.gone")).is_empty());
    }
}
