//! The replica side of snapshot + WAL shipping.
//!
//! A replica is an ordinary in-memory [`ServerState`] marked with
//! [`ServerState::set_replica_of`], kept warm by a background puller
//! thread that speaks the `SHIP` verb to the primary:
//!
//! 1. a bare `SHIP` lists the primary's tenants and shippable
//!    positions — the replica creates tenants it is missing and drops
//!    ones the primary no longer has;
//! 2. per tenant, repeated `SHIP <db> <epoch> <offset>` requests pull
//!    the next segment past the replica's applied position. A `wal`
//!    segment's records are decoded ([`decode_frames`] tolerates a
//!    frame split across segments) and applied through
//!    [`WalRecord::apply`] — the same code recovery uses — so the
//!    replica's databases and pinned catalogs stay warm; a `snapshot`
//!    segment replaces the tenant's database wholesale and restarts
//!    the position at the snapshot's epoch.
//!
//! The pull loop is the backpressure story: the primary never pushes,
//! it answers bounded requests (at most
//! [`SHIP_MAX_BYTES`](crate::server::SHIP_MAX_BYTES) of WAL per
//! reply), so a slow replica simply asks less often — exactly how a
//! slow `FETCH` client pages a cursor.
//!
//! Divergence heals itself. If the primary restarts and its log is
//! shorter than the replica's applied offset (an unsynced tail died
//! with the process), or a checkpoint bumped the epoch, the primary's
//! reply falls back to snapshot mode and the replica re-bases on the
//! image. Corrupt shipped bytes force the same full resync rather
//! than guessing.
//!
//! Per-tenant gauges `replica.lag_bytes` and `replica.epoch` (under
//! the tenant's metrics scope) report how far behind the replica is;
//! `STATS` on a replica names its primary.

use crate::client::Client;
use crate::metrics;
use crate::protocol::hex_decode;
use crate::state::{ServerState, StateError, Tenant};
use cq_data::Database;
use cq_storage::{decode_frames, snapshot, TenantLimits, WalRecord};
use std::collections::HashMap;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// How long the puller waits between rounds once it is caught up (and
/// after a connection failure before retrying).
pub const DEFAULT_POLL: Duration = Duration::from_millis(200);

/// An epoch no live WAL can be at, used as the initial position so the
/// first `SHIP` for a tenant mismatches and ships the base snapshot.
const UNSYNCED: u64 = u64::MAX;

/// The replica's applied position in one tenant's history.
struct Position {
    /// Epoch of the primary WAL we are applying from.
    epoch: u64,
    /// Bytes of that WAL fetched so far (the next `SHIP` offset).
    offset: u64,
    /// Fetched bytes not yet consumed — a WAL frame can arrive split
    /// across two segments.
    pending: Vec<u8>,
}

impl Position {
    fn fresh() -> Position {
        Position { epoch: UNSYNCED, offset: 0, pending: Vec::new() }
    }
}

/// A running replica puller. Dropping the handle signals the thread to
/// stop; [`ReplicaHandle::stop`] also joins it.
pub struct ReplicaHandle {
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl ReplicaHandle {
    /// Signal the puller to stop and wait for it to exit.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ReplicaHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
    }
}

/// Mark `state` as a replica of `primary` and start the puller thread.
/// `poll` is the idle delay between rounds ([`DEFAULT_POLL`] is a
/// sensible default).
pub fn start(state: Arc<ServerState>, primary: String, poll: Duration) -> ReplicaHandle {
    state.set_replica_of(&primary);
    let stop = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&stop);
    let thread = std::thread::Builder::new()
        .name("cq-replica".into())
        .spawn(move || run(&state, &primary, poll, &flag))
        .expect("spawn replica puller thread");
    ReplicaHandle { stop, thread: Some(thread) }
}

fn run(state: &ServerState, primary: &str, poll: Duration, stop: &AtomicBool) {
    let mut positions: HashMap<String, Position> = HashMap::new();
    let mut conn: Option<Client> = None;
    while !stop.load(Ordering::SeqCst) {
        if conn.is_none() {
            conn = Client::connect_with_retry(primary, Duration::from_secs(1)).ok();
            if conn.is_none() {
                sleep_unless_stopped(poll, stop);
                continue;
            }
        }
        let c = conn.as_mut().expect("connection just established");
        match pull_round(state, c, &mut positions, stop) {
            // caught up (or the primary refused, e.g. mid-restart):
            // idle before polling again
            Ok(false) => sleep_unless_stopped(poll, stop),
            // made progress: go straight into the next round
            Ok(true) => {}
            Err(_) => {
                // connection-level failure: reconnect after a pause
                conn = None;
                sleep_unless_stopped(poll, stop);
            }
        }
    }
}

/// Sleep in small slices so a stop request is honoured promptly.
fn sleep_unless_stopped(total: Duration, stop: &AtomicBool) {
    let slice = Duration::from_millis(20);
    let mut left = total;
    while !left.is_zero() && !stop.load(Ordering::SeqCst) {
        let step = left.min(slice);
        std::thread::sleep(step);
        left = left.saturating_sub(step);
    }
}

/// One sync round: reconcile the tenant set, then pull every tenant to
/// its listed position. Returns whether any segment was applied.
/// `Err` means the connection itself failed (caller reconnects);
/// protocol-level refusals just end the round.
fn pull_round(
    state: &ServerState,
    c: &mut Client,
    positions: &mut HashMap<String, Position>,
    stop: &AtomicBool,
) -> io::Result<bool> {
    let listing = c.request("SHIP")?;
    if !listing.is_ok() {
        return Ok(false);
    }
    let mut primary_tenants: Vec<String> = Vec::new();
    for line in &listing.data {
        if let Some(name) = line.split_whitespace().next() {
            primary_tenants.push(name.to_string());
        }
    }

    // tenant-set reconciliation: create what the primary has and we
    // don't, drop what it no longer has
    for name in &primary_tenants {
        match state.create_db(name) {
            Ok(_) | Err(StateError::Exists) => {}
            Err(_) => return Ok(false),
        }
    }
    for tenant in state.tenants() {
        let name = tenant.name().to_string();
        if !primary_tenants.iter().any(|n| n == &name) {
            let _ = state.drop_db(&name);
            positions.remove(&name);
        }
    }

    let mut progressed = false;
    for name in &primary_tenants {
        let Ok(tenant) = state.tenant(name) else { continue };
        let pos = positions.entry(name.clone()).or_insert_with(Position::fresh);
        progressed |= pull_tenant(state, c, name, &tenant, pos, stop)?;
    }
    Ok(progressed)
}

/// Pull one tenant until it is caught up with the primary (or the
/// primary refuses / we are told to stop). Returns whether anything
/// was applied.
fn pull_tenant(
    state: &ServerState,
    c: &mut Client,
    name: &str,
    tenant: &Tenant,
    pos: &mut Position,
    stop: &AtomicBool,
) -> io::Result<bool> {
    let mut progressed = false;
    while !stop.load(Ordering::SeqCst) {
        let reply = c.request(&format!("SHIP {name} {} {}", pos.epoch, pos.offset))?;
        if !reply.is_ok() {
            // dropped mid-round, injected ship fault, … — next round
            // re-lists and retries
            break;
        }
        let Some(header) = reply.data.first() else { break };
        let fields: Vec<&str> = header.split_whitespace().collect();
        match fields.as_slice() {
            ["wal", epoch, offset, total] => {
                let (Ok(epoch), Ok(offset), Ok(total)) =
                    (epoch.parse::<u64>(), offset.parse::<u64>(), total.parse::<u64>())
                else {
                    break;
                };
                // the primary echoes the position it served from; a
                // mismatch means our request raced a checkpoint —
                // restart from scratch
                if epoch != pos.epoch || offset != pos.offset {
                    *pos = Position::fresh();
                    continue;
                }
                let bytes = match decode_hex_lines(&reply.data[1..]) {
                    Ok(b) => b,
                    Err(_) => {
                        *pos = Position::fresh();
                        continue;
                    }
                };
                if bytes.is_empty() {
                    publish_lag(state, name, pos, total);
                    break; // caught up
                }
                pos.pending.extend_from_slice(&bytes);
                pos.offset += bytes.len() as u64;
                match decode_frames(&pos.pending) {
                    Ok((records, consumed)) => {
                        if apply_records(tenant, &records).is_err() {
                            *pos = Position::fresh();
                            continue;
                        }
                        pos.pending.drain(..consumed);
                        progressed = true;
                    }
                    Err(_) => {
                        // shipped bytes fail their checksum: force a
                        // full snapshot resync rather than guessing
                        *pos = Position::fresh();
                        continue;
                    }
                }
                publish_lag(state, name, pos, total);
                if pos.offset >= total {
                    break;
                }
            }
            ["snapshot", epoch, _len] => {
                let Ok(epoch) = epoch.parse::<u64>() else { break };
                let bytes = match decode_hex_lines(&reply.data[1..]) {
                    Ok(b) => b,
                    Err(_) => break,
                };
                if bytes.is_empty() {
                    // primary tenant has no snapshot yet: base is the
                    // empty database
                    tenant.mutate(|db| *db = Database::new());
                } else {
                    let Ok((db, _epoch)) =
                        snapshot::from_bytes(&bytes, Path::new("<shipped>"))
                    else {
                        break;
                    };
                    tenant.mutate(|d| *d = db);
                }
                // limits ride the WAL (re-appended after checkpoints),
                // not the snapshot: reset and let records restore them
                tenant.apply_limits(TenantLimits::default());
                *pos = Position { epoch, offset: 0, pending: Vec::new() };
                progressed = true;
                publish_lag(state, name, pos, pos.offset);
            }
            _ => break,
        }
    }
    Ok(progressed)
}

/// Decode the hex payload lines of a `SHIP` reply into one byte run.
fn decode_hex_lines(lines: &[String]) -> Result<Vec<u8>, String> {
    let mut bytes = Vec::new();
    for line in lines {
        bytes.extend_from_slice(&hex_decode(line)?);
    }
    Ok(bytes)
}

/// Apply a decoded batch under one exclusive pass. `SetLimits` is a
/// database no-op — route it to the tenant's limit atomics instead,
/// preserving record order (limits are last-writer-wins). An apply
/// error means the shipped history does not describe this database;
/// the caller re-bases on a fresh snapshot.
fn apply_records(tenant: &Tenant, records: &[WalRecord]) -> Result<(), String> {
    tenant.mutate(|db| {
        for record in records {
            if let WalRecord::SetLimits(l) = record {
                tenant.apply_limits(*l);
            } else {
                record.apply(db)?;
            }
        }
        Ok(())
    })
}

/// Publish the tenant's replication gauges.
fn publish_lag(state: &ServerState, name: &str, pos: &Position, total: u64) {
    let scope = state.metrics().registry().scope(&metrics::tenant_scope(name));
    scope.gauge("replica.lag_bytes").set(total.saturating_sub(pos.offset));
    scope.gauge("replica.epoch").set(pos.epoch);
}
