//! The server: a per-connection [`Session`] command interpreter and the
//! [`Server`] accept-loop + worker-pool runtime around it.
//!
//! Threading model: one acceptor thread hands accepted connections to a
//! fixed pool of worker threads over an [`mpsc`] channel; each worker
//! serves one connection at a time, line by line. Evaluation inside a
//! session runs through the process-wide planner (`eval::with_global_planner`,
//! the per-process plan cache) against the tenant's pinned
//! [`IndexCatalog`](cq_data::IndexCatalog), so repeated query shapes
//! skip classification and repeated queries on an unchanged tenant skip
//! every index build. `BATCH` blocks additionally fan out over
//! [`EvalCtx::batch_tasks`] — the pinned catalog and one planner pass
//! shared by the whole batch.
//!
//! Sessions never panic the connection: command dispatch is wrapped in
//! `catch_unwind`, and a panicking handler yields `ERR internal` with
//! the session reset to idle.

use crate::metrics::{self, SessionMetrics, SERVER_SCOPE};
use crate::protocol::{
    hex_encode, parse_command, parse_row, query_task, render_row, render_rows,
    BudgetSetting, Command, ErrKind, Reply, DATA_PREFIX, END_KEYWORD,
};
use crate::state::{Budget, ServerState, ShipSegment, StateError, Tenant};
use cq_core::{parse_query, ConjunctiveQuery, ParseError};
use cq_data::{Relation, Val};
use cq_engine::{CancelToken, EvalError};
use cq_obs::trace::{self, TraceSink};
use cq_obs::SlowQuery;
use cq_planner::{eval, execute::Answers, EvalBudget, EvalCtx, Output, QueryPlan, Task};
use cq_storage::WalRecord;
use std::collections::HashMap;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Rows buffered per write while streaming `ANSWERS`: the transport
/// drains the answer stream in chunks of this many rows, writing and
/// flushing each chunk before pulling the next. Per-connection answer
/// memory is bounded by one chunk regardless of result size — a slow
/// client backpressures the drain through the TCP send buffer instead
/// of ballooning the server.
pub const STREAM_CHUNK_ROWS: usize = 256;

/// Cap on concurrently open cursors per session: cursors pin catalog
/// artifacts (enumerator structures, direct-access indexes), so an
/// unbounded registry would let one client hold unbounded memory.
pub const MAX_CURSORS_PER_SESSION: usize = 16;

/// Cap on raw bytes per `SHIP <db> <epoch> <offset>` WAL reply: the
/// segment transfer is pull-driven (the replica issues a `SHIP` per
/// segment, exactly like `FETCH` pages a cursor), so this bounds both
/// the primary's per-reply memory and how long the tenant read lock is
/// held reading bytes — a slow replica backpressures by pulling slower,
/// never by ballooning the primary.
pub const SHIP_MAX_BYTES: u64 = 1 << 20;

/// Raw bytes per `SHIP` hex data line (wire lines are 2x this).
const SHIP_LINE_BYTES: usize = 2048;

/// An open cursor: a paused answer stream pinned to the tenant
/// snapshot generation it was planned against. The stream holds only
/// `Arc`'d catalog artifacts and owned relations, so an idle cursor
/// never holds the tenant's read lock — writers proceed, and a
/// mutation bumps the generation, which [`Session::live_cursor`]
/// detects as staleness on the next touch.
struct CursorEntry {
    tenant: Arc<Tenant>,
    generation: u64,
    plan: QueryPlan,
    answers: Answers,
}

/// A streamed `ANSWERS` response in flight: the evaluated stream plus
/// everything the transport needs to finish the reply on its own —
/// the plan (for timeout attribution in the terminal), the tenant's
/// deadline, and the receipt time (for the time-to-first-row metric).
pub struct AnswerFlow {
    answers: Answers,
    db: String,
    plan: QueryPlan,
    timeout: Option<Duration>,
    deadline: Option<Instant>,
    started: Instant,
    /// The per-query trace this flow's spans record into (disabled
    /// unless the server profiles). Finished — stream spans included —
    /// only after the drain drops the stream.
    trace: TraceSink,
    /// The command line that opened the flow (trace labelling).
    query: String,
}

/// What the transport should do with one request's result: write a
/// framed reply, or drain an answer stream to the wire incrementally
/// (rows in bounded chunks, then the terminal).
pub enum Action {
    /// An ordinary framed reply.
    Reply(Reply),
    /// A streamed `ANSWERS` response; hand it to
    /// [`Session::drain_flow`]. Boxed: a flow carries its plan and
    /// stream, far bigger than the everyday `Reply`.
    Stream(Box<AnswerFlow>),
}

/// One item of an open `BATCH` block: a parsed query or the per-item
/// error that will be reported at `END`.
enum BatchItem {
    Task(Task, ConjunctiveQuery),
    Bad(Reply),
}

/// What a session is currently reading.
enum Mode {
    /// One command per line.
    Idle,
    /// Inside `LOAD <rel> <cols>` ... `END`.
    Loading {
        relation: String,
        cols: usize,
        rows: Vec<Vec<Val>>,
        /// First row-level error; rows keep being consumed until `END`.
        error: Option<Reply>,
    },
    /// Inside `BATCH` ... `END`.
    Batching { items: Vec<BatchItem> },
}

/// Per-connection protocol state: the current tenant and any open
/// `LOAD`/`BATCH` block. Deterministic and transport-free — tests feed
/// it lines directly, the server feeds it lines from a socket.
pub struct Session {
    state: Arc<ServerState>,
    current: Option<Arc<Tenant>>,
    mode: Mode,
    finished: bool,
    batch_workers: usize,
    /// Cached metric handles (see [`SessionMetrics`]); recording on
    /// the warm path is lock-free.
    metrics: SessionMetrics,
    /// Connection-liveness probe polled during evaluation: `true`
    /// means the client is gone and in-flight work should be cancelled.
    cancel_probe: Option<Arc<dyn Fn() -> bool + Send + Sync>>,
    /// Open cursors, by the id handed out in `OK cursor <id>`.
    cursors: HashMap<u64, CursorEntry>,
    /// The next cursor id (session-scoped, never reused).
    next_cursor_id: u64,
    /// A streamed response produced by the current command, picked up
    /// by [`Session::handle_action`] after dispatch returns.
    pending_flow: Option<AnswerFlow>,
}

impl Session {
    /// A fresh session over shared server state.
    pub fn new(state: Arc<ServerState>) -> Session {
        let batch_workers =
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        let metrics = SessionMetrics::new(Arc::clone(state.metrics()));
        Session {
            state,
            current: None,
            mode: Mode::Idle,
            finished: false,
            batch_workers,
            metrics,
            cancel_probe: None,
            cursors: HashMap::new(),
            next_cursor_id: 0,
            pending_flow: None,
        }
    }

    /// Attach a liveness probe consulted while queries run: when it
    /// returns `true` (client gone), in-flight evaluation is cancelled
    /// cooperatively instead of running to completion for nobody.
    pub fn set_cancel_probe(&mut self, probe: impl Fn() -> bool + Send + Sync + 'static) {
        self.cancel_probe = Some(Arc::new(probe));
    }

    /// Has the client said `QUIT`?
    pub fn finished(&self) -> bool {
        self.finished
    }

    /// Feed one raw request line (newline already stripped). Returns
    /// what the transport should do: write a framed [`Action::Reply`],
    /// drain an [`Action::Stream`], or nothing (`None`) when the line
    /// was consumed silently (a blank line, or a row/item inside an
    /// open `LOAD`/`BATCH` block).
    ///
    /// Never panics: a panicking handler is caught, the session resets
    /// to idle, and the client gets `ERR internal`.
    pub fn handle_action(&mut self, raw: &[u8]) -> Option<Action> {
        let reply = match std::panic::catch_unwind(AssertUnwindSafe(|| self.step(raw))) {
            Ok(reply) => reply,
            Err(_) => {
                self.mode = Mode::Idle;
                self.pending_flow = None;
                Some(Reply::err(
                    ErrKind::Internal,
                    "command handler panicked; session reset to idle",
                ))
            }
        };
        if let Some(flow) = self.pending_flow.take() {
            // the dispatch reply is a placeholder; the real terminal is
            // written (and error-counted) when the drain finishes
            return Some(Action::Stream(Box::new(flow)));
        }
        let reply = reply?;
        self.count_error(&reply);
        Some(Action::Reply(reply))
    }

    /// [`Session::handle_action`] with any streamed response collected
    /// into one full reply — the in-process surface (tests, doctests,
    /// embedded use) where incremental writes have no transport to
    /// flow through.
    pub fn handle_raw(&mut self, raw: &[u8]) -> Option<Reply> {
        match self.handle_action(raw)? {
            Action::Reply(r) => Some(r),
            Action::Stream(flow) => Some(self.collect_flow(*flow)),
        }
    }

    /// [`Session::handle_raw`] for already-decoded text.
    pub fn handle_line(&mut self, line: &str) -> Option<Reply> {
        self.handle_raw(line.as_bytes())
    }

    /// Count one error reply, by wire kind — block completions
    /// (`LOAD`/`BATCH` `END`), stream terminals, and panics included.
    fn count_error(&self, reply: &Reply) {
        if !reply.is_ok() {
            if let Some(kind) =
                reply.terminal.strip_prefix("ERR ").and_then(|t| t.split(':').next())
            {
                self.metrics.shared().record_error(kind);
            }
        }
    }

    /// Pull up to `max` rows off a stream, wire-rendered into `rows`.
    /// `Ok(true)` means the stream is exhausted; `Err` is an
    /// evaluation error (cancellation included) mid-stream.
    fn pull_rows(
        answers: &mut Answers,
        max: usize,
        rows: &mut Vec<String>,
    ) -> Result<bool, EvalError> {
        for _ in 0..max {
            match answers.next()? {
                Some(row) => rows.push(render_row(row)),
                None => return Ok(true),
            }
        }
        Ok(false)
    }

    /// The terminal for a stream that failed mid-drain: cancellation is
    /// attributed (deadline vs. disconnect) exactly like the
    /// materialized path; anything else is `ERR eval`.
    fn flow_error(&mut self, flow: &AnswerFlow, e: EvalError) -> Reply {
        match e {
            EvalError::Cancelled => {
                let timed_out = flow.deadline.is_some_and(|d| Instant::now() >= d);
                if timed_out {
                    self.metrics.record_timeout(&flow.db);
                } else {
                    self.metrics.record_cancellation(&flow.db);
                }
                timeout_reply(&flow.plan, flow.started.elapsed(), flow.timeout, timed_out)
            }
            e => Reply::err(ErrKind::Eval, e),
        }
    }

    /// Drain a streamed response to the wire: `* ` data lines in
    /// chunks of [`STREAM_CHUNK_ROWS`], each written and flushed before
    /// the next is pulled, then the one terminal line. Rows already on
    /// the wire stay there when the stream fails mid-drain — the
    /// client sees partial data followed by the `ERR` terminal.
    pub fn drain_flow(
        &mut self,
        mut flow: AnswerFlow,
        out: &mut impl Write,
    ) -> std::io::Result<()> {
        let mut total: u64 = 0;
        let mut buf = String::new();
        let terminal = loop {
            let mut rows = Vec::with_capacity(STREAM_CHUNK_ROWS);
            let res = Self::pull_rows(&mut flow.answers, STREAM_CHUNK_ROWS, &mut rows);
            if total == 0 && !rows.is_empty() {
                self.metrics.record_time_to_first_row(&flow.db, flow.started.elapsed());
            }
            total += rows.len() as u64;
            buf.clear();
            for r in &rows {
                buf.push_str(DATA_PREFIX);
                buf.push_str(r);
                buf.push('\n');
            }
            out.write_all(buf.as_bytes())?;
            out.flush()?;
            match res {
                Ok(false) => continue,
                Ok(true) => break Reply::ok(format!("{total} rows")),
                Err(e) => break self.flow_error(&flow, e),
            }
        };
        self.metrics.record_answer_rows(&flow.db, total);
        self.count_error(&terminal);
        self.finish_flow_trace(flow);
        terminal.write_to(out)?;
        out.flush()
    }

    /// Close out a drained flow's trace: drop the stream first (its
    /// span records itself on drop, exec and drain both visible), then
    /// finish the sink into the tenant's PROFILE ring. A disabled sink
    /// (profiling off) finishes to `None` and nothing is retained.
    fn finish_flow_trace(&self, flow: AnswerFlow) {
        let AnswerFlow { answers, trace, db, query, .. } = flow;
        drop(answers);
        if let Some(tr) = trace.finish(&db, &query) {
            self.metrics.shared().push_trace(tr);
        }
    }

    /// [`Session::drain_flow`] into one in-memory [`Reply`] — the
    /// in-process bridge used by [`Session::handle_raw`]. Partial rows
    /// pulled before a mid-stream failure are kept as data lines, like
    /// the wire form.
    fn collect_flow(&mut self, mut flow: AnswerFlow) -> Reply {
        let mut data = Vec::new();
        let outcome = loop {
            match flow.answers.next() {
                Ok(Some(row)) => {
                    if data.is_empty() {
                        self.metrics
                            .record_time_to_first_row(&flow.db, flow.started.elapsed());
                    }
                    data.push(render_row(row));
                }
                Ok(None) => break Ok(()),
                Err(e) => break Err(e),
            }
        };
        self.metrics.record_answer_rows(&flow.db, data.len() as u64);
        let terminal = match outcome {
            Ok(()) => {
                let n = data.len();
                self.finish_flow_trace(flow);
                return Reply::ok_with(data, format!("{n} rows"));
            }
            Err(e) => self.flow_error(&flow, e),
        };
        self.count_error(&terminal);
        self.finish_flow_trace(flow);
        Reply { data, terminal: terminal.terminal }
    }

    fn step(&mut self, raw: &[u8]) -> Option<Reply> {
        match &mut self.mode {
            Mode::Idle => {
                let Ok(text) = std::str::from_utf8(raw) else {
                    return Some(Reply::err(ErrKind::BadUtf8, "request is not UTF-8"));
                };
                let line = text.trim();
                if line.is_empty() {
                    return None;
                }
                Some(self.command(line))
            }
            Mode::Loading { .. } => self.load_line(raw),
            Mode::Batching { .. } => self.batch_line(raw),
        }
    }

    fn command(&mut self, line: &str) -> Reply {
        let cmd = match parse_command(line) {
            Ok(c) => c,
            Err(reply) => return reply,
        };
        let (verb, tenant_scoped) = Self::cmd_verb(&cmd);
        let start = Instant::now();
        // when the server profiles (`cqd --profile N`), tenant-scoped
        // commands run under a fresh trace sink; the finished trace
        // lands in the tenant's PROFILE ring. With profiling off the
        // sink is never installed and every span is a no-op.
        let profiling = tenant_scoped && self.metrics.shared().profiling();
        let reply = if profiling {
            let sink = TraceSink::enabled();
            let reply = trace::with(&sink, || self.dispatch(cmd));
            // a streamed reply keeps its spans open until the drain
            // drops the stream, so the flow (which captured this sink
            // at construction) finishes the trace instead — see
            // `finish_flow_trace`
            if self.pending_flow.is_none() {
                if let Some(t) = &self.current {
                    if let Some(tr) = sink.finish(t.name(), line) {
                        self.metrics.shared().push_trace(tr);
                    }
                }
            }
            reply
        } else {
            self.dispatch(cmd)
        };
        // tenant-addressed commands count in the tenant's scope (QPS
        // per command per database); the rest in the server scope
        let scope = match (&self.current, tenant_scoped) {
            (Some(t), true) => metrics::tenant_scope(t.name()),
            _ => SERVER_SCOPE.to_string(),
        };
        if !reply.is_ok() {
            if let (Some(t), true) = (&self.current, tenant_scoped) {
                self.metrics.record_tenant_error(t.name());
            }
        }
        self.metrics.record_cmd(&scope, verb, start.elapsed());
        reply
    }

    /// The metric verb for a command, and whether it addresses the
    /// session's current tenant (vs. the server as a whole).
    fn cmd_verb(cmd: &Command) -> (&'static str, bool) {
        match cmd {
            Command::Ping => ("ping", false),
            Command::CreateDb(_) => ("create-db", false),
            Command::Use(_) => ("use", false),
            Command::Insert { .. } => ("insert", true),
            Command::Load { .. } => ("load", true),
            Command::Query { task: Task::Decide, .. } => ("decide", true),
            Command::Query { task: Task::Count, .. } => ("count", true),
            Command::Query { .. } => ("answers", true),
            Command::Explain { .. } => ("explain", true),
            Command::ExplainAnalyze { .. } => ("explain-analyze", true),
            Command::Cursor { .. } => ("cursor", true),
            Command::Fetch { .. } => ("fetch", true),
            Command::SeekCursor { .. } => ("seek", true),
            Command::CloseCursor { .. } => ("close", true),
            Command::Batch => ("batch", true),
            Command::Save => ("save", true),
            Command::DropDb(_) => ("drop-db", false),
            Command::DropRelation(_) => ("drop", true),
            Command::Stats { .. } => ("stats", false),
            Command::Metrics { .. } => ("metrics", false),
            Command::MetricsRate { .. } => ("metrics-rate", false),
            Command::Profile { .. } => ("profile", false),
            Command::SetBudget { .. } => ("set-budget", false),
            Command::SetTimeout { .. } => ("set-timeout", false),
            Command::Resume(_) => ("resume", false),
            Command::Ship { .. } => ("ship", false),
            Command::Quit => ("quit", false),
        }
    }

    fn dispatch(&mut self, cmd: Command) -> Reply {
        match cmd {
            Command::Ping => Reply::ok("pong"),
            Command::Quit => {
                self.finished = true;
                Reply::ok("bye")
            }
            Command::CreateDb(name) => match self.replica_guard().and_then(|()| {
                self.state.create_db(&name).map_err(|e| match e {
                    StateError::Exists => Reply::err(
                        ErrKind::Exists,
                        format!("database `{name}` already exists"),
                    ),
                    StateError::Storage(msg) => Reply::err(ErrKind::Storage, msg),
                    StateError::NoSuchDb => unreachable!("create_db never reports this"),
                })
            }) {
                Ok(_) => Reply::ok(format!("created {name}")),
                Err(reply) => reply,
            },
            Command::Use(name) => match self.state.tenant(&name) {
                Ok(t) => {
                    self.current = Some(t);
                    Reply::ok(format!("using {name}"))
                }
                Err(_) => {
                    Reply::err(ErrKind::NoSuchDb, format!("no database named `{name}`"))
                }
            },
            Command::Insert { relation, values } => self.insert(&relation, &values),
            Command::Load { relation, cols } => self.open_load(relation, cols),
            Command::Query { task, src } => self.eval_query(task, &src),
            Command::Explain { task, src } => self.explain(task, &src),
            Command::ExplainAnalyze { task, src } => self.explain_analyze(task, &src),
            Command::Cursor { task, src } => self.open_cursor(task, &src),
            Command::Fetch { id, n } => self.fetch(id, n),
            Command::SeekCursor { id, k } => self.seek_cursor(id, k),
            Command::CloseCursor { id } => self.close_cursor(id),
            Command::Batch => self.open_batch(),
            Command::Save => self.save(),
            Command::DropDb(name) => self.drop_db(&name),
            Command::DropRelation(relation) => self.drop_relation(&relation),
            Command::Stats { db } => self.stats(db.as_deref()),
            Command::Metrics { db } => self.metrics_dump(db.as_deref()),
            Command::MetricsRate { db, window_s } => {
                self.metrics_rate(db.as_deref(), window_s)
            }
            Command::Profile { db } => self.profile(&db),
            Command::SetBudget { db, setting } => self.set_budget(&db, setting),
            Command::SetTimeout { db, ms } => self.set_timeout(&db, ms),
            Command::Resume(db) => self.resume(&db),
            Command::Ship { db, epoch, offset } => {
                self.ship(db.as_deref(), epoch, offset)
            }
        }
    }

    /// The `ERR read-only` refusal when this server is a replica —
    /// every mutating verb checks it before anything else, so a client
    /// that writes to the wrong end of a pair is told where the
    /// primary is.
    fn replica_guard(&self) -> Result<(), Reply> {
        match self.state.replica_of() {
            Some(primary) => Err(Reply::err(
                ErrKind::ReadOnly,
                format!(
                    "this server is a read-only replica of {primary}; send writes there"
                ),
            )),
            None => Ok(()),
        }
    }

    fn tenant(&mut self) -> Result<Arc<Tenant>, Reply> {
        match &self.current {
            None => Err(Reply::err(
                ErrKind::NoDb,
                "no database selected; CREATE DB / USE one first",
            )),
            Some(t) if t.is_dropped() => {
                let name = t.name().to_string();
                // let go of the ghost so its memory can be reclaimed
                self.current = None;
                Err(Reply::err(
                    ErrKind::NoSuchDb,
                    format!("database `{name}` was dropped; USE another"),
                ))
            }
            Some(t) => Ok(Arc::clone(t)),
        }
    }

    /// [`Session::tenant`], then refuse if this server is a replica or
    /// the tenant is degraded: mutations fail fast with `ERR read-only`
    /// / `ERR degraded` instead of touching a log they must not write.
    fn writable(&mut self) -> Result<Arc<Tenant>, Reply> {
        self.replica_guard()?;
        let tenant = self.tenant()?;
        match tenant.degraded_reason() {
            Some(reason) => Err(degraded_reply(tenant.name(), &reason)),
            None => Ok(tenant),
        }
    }

    /// The group-commit coalescing window mutations should wait on,
    /// from the server's write policy (`None`: ack from the page
    /// cache, the pre-group-commit behavior).
    fn commit_window(&self) -> Option<Duration> {
        self.state.write_policy().group_commit
    }

    /// Post-mutation bookkeeping: fold the WAL outcome into the reply
    /// ([`Session::walled`]), then — when the mutation stood and the
    /// policy asks for it — checkpoint automatically once the tenant's
    /// log crosses `--auto-save-bytes`. An auto-checkpoint failure is
    /// counted but does not fail the already-durable mutation (the log
    /// is intact; the next mutation retries the checkpoint).
    fn finish_mutation(
        &mut self,
        tenant: &Arc<Tenant>,
        reply: Reply,
        wal: std::io::Result<()>,
    ) -> Reply {
        let reply = Self::walled(tenant, reply, wal);
        if !reply.is_ok() {
            return reply;
        }
        let Some(limit) = self.state.write_policy().auto_save_bytes else {
            return reply;
        };
        let Some(store) = self.state.store().cloned() else { return reply };
        if tenant.wal_len().is_some_and(|len| len >= limit) {
            let scope = self
                .state
                .metrics()
                .registry()
                .scope(&metrics::tenant_scope(tenant.name()));
            match tenant.checkpoint(&store) {
                Ok(_) => scope.counter("storage.auto-checkpoints").inc(),
                Err(_) => scope.counter("storage.auto-checkpoint-failures").inc(),
            }
        }
        reply
    }

    /// Fold a WAL-append outcome into a reply: a mutation that applied
    /// in memory but failed to reach the log must not report success —
    /// and an unrecoverable append failure flips the tenant to
    /// read-only so later mutations can't silently widen the gap
    /// between memory and the log.
    fn walled(tenant: &Tenant, reply: Reply, wal: std::io::Result<()>) -> Reply {
        match wal {
            Ok(()) => reply,
            Err(e) => {
                tenant.set_degraded(&format!("wal append failed: {e}"));
                Reply::err(
                    ErrKind::Storage,
                    format!(
                        "mutation applied in memory but the wal append failed: {e}; \
                         `{name}` is now read-only — RESUME {name} to restore \
                         read-write",
                        name = tenant.name()
                    ),
                )
            }
        }
    }

    fn insert(&mut self, relation: &str, values: &[Val]) -> Reply {
        let tenant = match self.writable() {
            Ok(t) => t,
            Err(e) => return e,
        };
        let (reply, wal) = tenant.mutate_durable(self.commit_window(), |db| {
            let total = match db.get(relation) {
                Some(existing) if existing.arity() != values.len() => {
                    return (
                        Reply::err(
                            ErrKind::ArityMismatch,
                            format!(
                                "`{relation}` has arity {}, tuple has {} values",
                                existing.arity(),
                                values.len()
                            ),
                        ),
                        None,
                    );
                }
                Some(existing) if existing.contains(values) => {
                    // no-op: don't touch the generation (the tenant's
                    // warm catalog survives), don't log, and say what
                    // happened
                    return (
                        Reply::ok(format!(
                            "duplicate ignored in {relation} ({} total)",
                            existing.len()
                        )),
                        None,
                    );
                }
                Some(_) => {
                    // in-place sorted splice: no clone, no re-sort
                    let rel = db.get_mut(relation).expect("presence checked above");
                    rel.insert_row(values);
                    rel.len()
                }
                None => {
                    let mut rel = Relation::new(values.len());
                    rel.insert_row(values);
                    db.insert(relation, rel);
                    1
                }
            };
            (
                Reply::ok(format!("inserted 1 row into {relation} ({total} total)")),
                Some(WalRecord::Insert {
                    relation: relation.to_string(),
                    row: values.to_vec(),
                }),
            )
        });
        self.finish_mutation(&tenant, reply, wal)
    }

    fn open_load(&mut self, relation: String, cols: usize) -> Reply {
        let tenant = match self.writable() {
            Ok(t) => t,
            Err(e) => return e,
        };
        if let Some(existing_arity) =
            tenant.read(|db, _| db.get(&relation).map(Relation::arity))
        {
            if existing_arity != cols {
                return Reply::err(
                    ErrKind::ArityMismatch,
                    format!("`{relation}` has arity {existing_arity}, LOAD says {cols}"),
                );
            }
        }
        self.mode = Mode::Loading { relation, cols, rows: Vec::new(), error: None };
        // the block is open; the one reply comes at END
        Reply::ok("loading; rows until END")
    }

    fn load_line(&mut self, raw: &[u8]) -> Option<Reply> {
        let text = std::str::from_utf8(raw).ok();
        let trimmed = text.map(str::trim);
        let Mode::Loading { relation, cols, rows, error } = &mut self.mode else {
            unreachable!("caller checked mode")
        };
        match trimmed {
            Some(t) if t.eq_ignore_ascii_case(END_KEYWORD) => {
                let relation = std::mem::take(relation);
                let cols = *cols;
                let rows = std::mem::take(rows);
                let error = error.take();
                self.mode = Mode::Idle;
                if let Some(e) = error {
                    return Some(e);
                }
                Some(self.finish_load(&relation, cols, rows))
            }
            Some("") => None, // blank lines between rows are fine
            Some(t) => {
                if error.is_none() {
                    match parse_row(t) {
                        Ok(vals) if vals.len() == *cols => rows.push(vals),
                        Ok(vals) => {
                            *error = Some(Reply::err(
                                ErrKind::ArityMismatch,
                                format!(
                                    "row {} has {} values, expected {cols}",
                                    rows.len() + 1,
                                    vals.len()
                                ),
                            ));
                        }
                        Err(bad) => {
                            *error = Some(Reply::err(
                                ErrKind::BadValue,
                                format!("row {}: `{bad}` is not a u64", rows.len() + 1),
                            ));
                        }
                    }
                }
                None
            }
            None => {
                if error.is_none() {
                    *error = Some(Reply::err(ErrKind::BadUtf8, "row is not UTF-8"));
                }
                None
            }
        }
    }

    fn finish_load(&mut self, relation: &str, cols: usize, rows: Vec<Vec<Val>>) -> Reply {
        let tenant = match self.writable() {
            Ok(t) => t,
            Err(e) => return e,
        };
        let n = rows.len();
        let (reply, wal) = tenant.mutate_durable(self.commit_window(), |db| {
            let existing = db.get(relation);
            let old_len = existing.map(Relation::len);
            let mut rel = match existing {
                Some(existing) if existing.arity() != cols => {
                    // relation changed arity while the block was open
                    return (
                        Reply::err(
                            ErrKind::ArityMismatch,
                            format!(
                                "`{relation}` has arity {}, LOAD says {cols}",
                                existing.arity()
                            ),
                        ),
                        None,
                    );
                }
                Some(existing) => existing.clone(),
                None => Relation::new(cols),
            };
            for row in &rows {
                rel.push_row(row);
            }
            rel.normalize();
            let total = rel.len();
            // set semantics: the content changed iff the row count did
            // (an all-duplicates or empty LOAD is a no-op) — skip the
            // re-insert so the generation and warm catalog survive,
            // and skip the log so replay stays a faithful history
            let record = if old_len != Some(total) {
                db.insert(relation, rel);
                // `rows` moves into the record: no copy of the bulk
                // payload inside the tenant's write lock
                Some(WalRecord::Load {
                    relation: relation.to_string(),
                    arity: cols,
                    rows,
                })
            } else {
                None
            };
            (
                Reply::ok(format!("loaded {n} rows into {relation} ({total} total)")),
                record,
            )
        });
        self.finish_mutation(&tenant, reply, wal)
    }

    /// Parse query text, turning errors into a structured reply whose
    /// data lines carry the source snippet with a caret.
    fn parse(&self, src: &str) -> Result<ConjunctiveQuery, Reply> {
        parse_query(src).map_err(|e| parse_error_reply(src, &e))
    }

    fn eval_query(&mut self, task: Task, src: &str) -> Reply {
        debug_assert!(task != Task::Access, "the protocol layer never builds this");
        let tenant = match self.tenant() {
            Ok(t) => t,
            Err(e) => return e,
        };
        let q = match self.parse(src) {
            Ok(q) => q,
            Err(e) => return e,
        };
        let (cancel, deadline) = self.cancel_token(&tenant);
        let started = Instant::now();
        let outcome = self.plan_and_execute(&tenant, task, src, &q, &cancel, deadline);
        match outcome {
            Err(reply) => reply,
            Ok((Output::Answers(answers), plan, _gen)) => {
                // hand the stream to the transport: preprocessing is
                // done, the tenant read lock is released (the stream
                // holds only Arc'd artifacts), and rows go out — or
                // into a cursorless collect — pull by pull
                self.pending_flow = Some(AnswerFlow {
                    answers,
                    db: tenant.name().to_string(),
                    plan,
                    timeout: tenant.timeout(),
                    deadline,
                    started,
                    trace: trace::current(),
                    query: src.to_string(),
                });
                Reply::ok("streaming") // placeholder, replaced by the drain
            }
            Ok((out, _plan, _gen)) => render_output(out),
        }
    }

    /// Plan, admission-check, and execute one query under the tenant's
    /// read lock. `Err` is the finished error reply (budget, timeout,
    /// eval); `Ok` carries the output — for `ANSWERS`/`ACCESS` a
    /// pull-driven stream whose artifacts outlive the lock — the plan
    /// that produced it, and the snapshot generation it ran against
    /// (read under the same lock, so cursors pin exactly the snapshot
    /// their stream was built on).
    fn plan_and_execute(
        &mut self,
        tenant: &Arc<Tenant>,
        task: Task,
        src: &str,
        q: &ConjunctiveQuery,
        cancel: &CancelToken,
        deadline: Option<Instant>,
    ) -> Result<(Output, QueryPlan, u64), Reply> {
        let sm = &mut self.metrics;
        tenant.read(|db, catalog| {
            let stats = catalog.stats(db);
            let plan = eval::with_global_planner(|p| p.plan(q, task, &stats));
            // admission control: reject over-budget plans before any
            // execution work, citing the lower bound that justifies it
            let ctx = EvalCtx::new()
                .with_catalog(catalog)
                .with_cancel(cancel.clone())
                .with_budget(eval_budget(tenant.budget()));
            if let Err(reason) = ctx.admit(&plan) {
                sm.record_rejection(tenant.name());
                return Err(budget_reply(&reason, &plan));
            }
            let start = Instant::now();
            let result = ctx.execute(&plan, q, db);
            let elapsed = start.elapsed();
            sm.record_op(tenant.name(), plan.op.name(), elapsed);
            let slowlog = sm.shared().slowlog();
            if slowlog.should_record(elapsed) {
                // peek (non-draining) at the in-flight trace: the
                // session-level sink closes after this, and the log
                // wants the three most expensive spans so far
                let top_spans = trace::current()
                    .snapshot(tenant.name(), src)
                    .map(|t| t.top_spans(3))
                    .unwrap_or_default();
                slowlog.push(SlowQuery {
                    db: tenant.name().to_string(),
                    query: src.to_string(),
                    plan_op: plan.op.name().to_string(),
                    exponent: plan.cost.exponent,
                    elapsed,
                    generation: db.generation(),
                    top_spans,
                });
            }
            match result {
                Err(EvalError::Cancelled) => {
                    // the deadline having passed attributes the trip:
                    // a tenant timeout, vs. the client going away
                    let timed_out = deadline.is_some_and(|d| Instant::now() >= d);
                    if timed_out {
                        sm.record_timeout(tenant.name());
                    } else {
                        sm.record_cancellation(tenant.name());
                    }
                    Err(timeout_reply(&plan, elapsed, tenant.timeout(), timed_out))
                }
                Err(e) => Err(Reply::err(ErrKind::Eval, e)),
                Ok(out) => Ok((out, plan, db.generation())),
            }
        })
    }

    /// `CURSOR ANSWERS|ACCESS <query>`: plan and execute like a query,
    /// but park the resulting stream in the session's cursor registry
    /// instead of draining it. The reply is `OK cursor <id>`; rows are
    /// pulled by `FETCH`, positioned by `SEEK` (direct-access plans),
    /// released by `CLOSE`. The cursor pins the tenant's snapshot
    /// generation — any later mutation invalidates it
    /// (`ERR stale-cursor` on next touch).
    fn open_cursor(&mut self, task: Task, src: &str) -> Reply {
        let tenant = match self.tenant() {
            Ok(t) => t,
            Err(e) => return e,
        };
        if self.cursors.len() >= MAX_CURSORS_PER_SESSION {
            return Reply::err(
                ErrKind::CursorLimit,
                format!(
                    "session already has {MAX_CURSORS_PER_SESSION} open cursors; \
                     CLOSE one first"
                ),
            );
        }
        let q = match self.parse(src) {
            Ok(q) => q,
            Err(e) => return e,
        };
        let (cancel, deadline) = self.cancel_token(&tenant);
        let outcome = self.plan_and_execute(&tenant, task, src, &q, &cancel, deadline);
        let (out, plan, generation) = match outcome {
            Ok(v) => v,
            Err(reply) => return reply,
        };
        let Output::Answers(mut answers) = out else {
            unreachable!("ANSWERS/ACCESS tasks always execute to a stream")
        };
        // the cursor outlives this request: each FETCH installs a fresh
        // deadline, so the opening one must not poison later pulls
        answers.set_cancel(CancelToken::never());
        let id = self.next_cursor_id;
        self.next_cursor_id += 1;
        self.metrics.record_cursor_opened(tenant.name());
        self.cursors.insert(id, CursorEntry { tenant, generation, plan, answers });
        Reply::ok(format!("cursor {id}"))
    }

    /// Look up a cursor for `FETCH`/`SEEK`, evicting it with
    /// `ERR stale-cursor` when the tenant mutated (or was dropped)
    /// since the cursor pinned its snapshot generation.
    fn live_cursor(&mut self, id: u64) -> Result<&mut CursorEntry, Reply> {
        let stale = match self.cursors.get(&id) {
            None => {
                return Err(Reply::err(
                    ErrKind::NoSuchCursor,
                    format!("no open cursor {id} in this session"),
                ))
            }
            Some(entry) => {
                entry.tenant.is_dropped()
                    || entry.tenant.read(|db, _| db.generation()) != entry.generation
            }
        };
        if stale {
            let entry = self.cursors.remove(&id).expect("present above");
            self.metrics.record_cursor_closed(entry.tenant.name(), true);
            return Err(Reply::err(
                ErrKind::StaleCursor,
                format!(
                    "cursor {id} is stale: `{}` mutated since the cursor pinned \
                     generation {}; the cursor is closed — re-open to see the new \
                     data",
                    entry.tenant.name(),
                    entry.generation
                ),
            ));
        }
        Ok(self.cursors.get_mut(&id).expect("present and live"))
    }

    /// `FETCH <id> <n>`: pull up to `n` rows from an open cursor. The
    /// terminal reports how many came and whether the stream is done
    /// (`OK <k> rows eof`). Each FETCH runs under a fresh tenant
    /// deadline; a trip leaves the cursor open with the already-pulled
    /// rows delivered.
    fn fetch(&mut self, id: u64, n: u64) -> Reply {
        let tenant = match self.live_cursor(id) {
            Ok(entry) => Arc::clone(&entry.tenant),
            Err(e) => return e,
        };
        let (cancel, deadline) = self.cancel_token(&tenant);
        let started = Instant::now();
        let entry = self.cursors.get_mut(&id).expect("verified live above");
        entry.answers.set_cancel(cancel);
        let mut data = Vec::new();
        let max = usize::try_from(n).unwrap_or(usize::MAX);
        let outcome = Self::pull_rows(&mut entry.answers, max, &mut data);
        self.metrics.record_answer_rows(tenant.name(), data.len() as u64);
        match outcome {
            Ok(eof) => {
                let n = data.len();
                let info =
                    if eof { format!("{n} rows eof") } else { format!("{n} rows") };
                Reply::ok_with(data, info)
            }
            Err(EvalError::Cancelled) => {
                let timed_out = deadline.is_some_and(|d| Instant::now() >= d);
                if timed_out {
                    self.metrics.record_timeout(tenant.name());
                } else {
                    self.metrics.record_cancellation(tenant.name());
                }
                let entry = self.cursors.get(&id).expect("still open");
                let terminal = timeout_reply(
                    &entry.plan,
                    started.elapsed(),
                    tenant.timeout(),
                    timed_out,
                );
                Reply { data, terminal: terminal.terminal }
            }
            Err(e) => Reply { data, terminal: Reply::err(ErrKind::Eval, e).terminal },
        }
    }

    /// `SEEK <id> <k>`: position a cursor so the next `FETCH` starts at
    /// the k-th answer (0-based). O(1) cursor arithmetic on
    /// direct-access and materialized plans — the skipped prefix is
    /// never enumerated; `ERR unsupported` (citing the plan operator)
    /// on constant-delay enumeration plans, which have no random
    /// access (Lemma 3.23 makes that a structural fact, not a missing
    /// feature).
    fn seek_cursor(&mut self, id: u64, k: u64) -> Reply {
        let entry = match self.live_cursor(id) {
            Ok(e) => e,
            Err(reply) => return reply,
        };
        match entry.answers.seek(k) {
            Ok(()) => Reply::ok(format!("cursor {id} at {k}")),
            Err(EvalError::Unsupported(msg)) => Reply::err(ErrKind::Unsupported, msg),
            Err(e) => Reply::err(ErrKind::Eval, e),
        }
    }

    /// `CLOSE <id>`: release a cursor and its pinned artifacts.
    fn close_cursor(&mut self, id: u64) -> Reply {
        match self.cursors.remove(&id) {
            Some(entry) => {
                self.metrics.record_cursor_closed(entry.tenant.name(), false);
                Reply::ok(format!("closed cursor {id}"))
            }
            None => Reply::err(
                ErrKind::NoSuchCursor,
                format!("no open cursor {id} in this session"),
            ),
        }
    }

    /// The cancellation token for one evaluation under `tenant`: its
    /// `SET TIMEOUT` deadline (if any) plus the session's
    /// client-liveness probe (if attached). Also returns the deadline
    /// so a trip can be attributed to it afterwards.
    fn cancel_token(&self, tenant: &Tenant) -> (CancelToken, Option<Instant>) {
        let deadline = tenant.timeout().and_then(|t| Instant::now().checked_add(t));
        let token = match deadline {
            Some(d) => CancelToken::with_deadline(d),
            None => CancelToken::never(),
        };
        let token = match &self.cancel_probe {
            Some(probe) => {
                let probe = Arc::clone(probe);
                token.with_probe(move || probe())
            }
            None => token,
        };
        (token, deadline)
    }

    fn explain(&mut self, task: Task, src: &str) -> Reply {
        let tenant = match self.tenant() {
            Ok(t) => t,
            Err(e) => return e,
        };
        let q = match self.parse(src) {
            Ok(q) => q,
            Err(e) => return e,
        };
        tenant.read(|db, catalog| {
            let stats = catalog.stats(db);
            let plan = eval::with_global_planner(|p| p.plan(&q, task, &stats));
            let text = cq_planner::explain::render(&plan, &q);
            Reply::ok_with(text.lines().map(str::to_string).collect(), "")
        })
    }

    /// `EXPLAIN ANALYZE <task> <query>`: the EXPLAIN plan rendering,
    /// then the query actually executed under a one-shot trace sink —
    /// the reply appends measured wall-clock, the observed row count
    /// against the planner's predicted `m^e` worst case, and the
    /// per-operator span tree (time plus recorded attributes). Answer
    /// streams are drained server-side: this command measures, it does
    /// not stream.
    fn explain_analyze(&mut self, task: Task, src: &str) -> Reply {
        debug_assert!(task != Task::Access, "the protocol layer never builds this");
        let tenant = match self.tenant() {
            Ok(t) => t,
            Err(e) => return e,
        };
        let q = match self.parse(src) {
            Ok(q) => q,
            Err(e) => return e,
        };
        let (cancel, deadline) = self.cancel_token(&tenant);
        let sink = TraceSink::enabled();
        let started = Instant::now();
        let outcome = trace::with(&sink, || {
            self.plan_and_execute(&tenant, task, src, &q, &cancel, deadline)
        });
        let (out, plan, _gen) = match outcome {
            Ok(r) => r,
            Err(reply) => return reply,
        };
        // drain answers to count rows; the stream records its span on
        // drop, so measured output below sees the full drain
        let rows = match out {
            Output::Count(n) => n,
            Output::Decision(d) => u64::from(d),
            Output::Answers(mut answers) => {
                let mut n: u64 = 0;
                loop {
                    match answers.next() {
                        Ok(Some(_)) => n += 1,
                        Ok(None) => break,
                        Err(EvalError::Cancelled) => {
                            let timed_out = deadline.is_some_and(|d| Instant::now() >= d);
                            if timed_out {
                                self.metrics.record_timeout(tenant.name());
                            } else {
                                self.metrics.record_cancellation(tenant.name());
                            }
                            return timeout_reply(
                                &plan,
                                started.elapsed(),
                                tenant.timeout(),
                                timed_out,
                            );
                        }
                        Err(e) => return Reply::err(ErrKind::Eval, e),
                    }
                }
                drop(answers);
                n
            }
        };
        let total = started.elapsed();
        let mut data: Vec<String> =
            cq_planner::explain::render(&plan, &q).lines().map(str::to_string).collect();
        data.push(format!(
            "analyze: total time={:.3}ms rows={rows}",
            total.as_secs_f64() * 1e3
        ));
        data.push(format!(
            "analyze: predicted m^{:.2} = {:.0} ops worst case; observed {rows} rows",
            plan.cost.exponent,
            plan.cost.operations()
        ));
        if let Some(tr) = sink.finish(tenant.name(), src) {
            tr.visit(|depth, sp| {
                let mut line = format!(
                    "{}{} time={:.3}ms",
                    "  ".repeat(depth + 1),
                    sp.name,
                    sp.elapsed.as_secs_f64() * 1e3
                );
                for (k, v) in &sp.attrs {
                    line.push_str(&format!(" {k}={v}"));
                }
                data.push(line);
            });
            if self.metrics.shared().profiling() {
                self.metrics.shared().push_trace(tr);
            }
        }
        Reply::ok_with(data, "analyzed")
    }

    fn open_batch(&mut self) -> Reply {
        if let Err(e) = self.tenant() {
            return e;
        }
        self.mode = Mode::Batching { items: Vec::new() };
        Reply::ok("batching; DECIDE|COUNT|ANSWERS items until END")
    }

    fn batch_line(&mut self, raw: &[u8]) -> Option<Reply> {
        let text = std::str::from_utf8(raw).ok();
        let trimmed = text.map(str::trim);
        let Mode::Batching { items } = &mut self.mode else {
            unreachable!("caller checked mode")
        };
        match trimmed {
            Some(t) if t.eq_ignore_ascii_case(END_KEYWORD) => {
                let items = std::mem::take(items);
                self.mode = Mode::Idle;
                Some(self.finish_batch(items))
            }
            Some("") => None,
            Some(t) => {
                let item = parse_batch_item(t);
                items.push(item);
                None
            }
            None => {
                items.push(BatchItem::Bad(Reply::err(
                    ErrKind::BadUtf8,
                    "batch item is not UTF-8",
                )));
                None
            }
        }
    }

    fn finish_batch(&mut self, items: Vec<BatchItem>) -> Reply {
        let tenant = match self.tenant() {
            Ok(t) => t,
            Err(e) => return e,
        };
        let n = items.len();
        let workers = self.batch_workers;
        let budget = tenant.budget();
        // one shared token: the tenant's deadline covers the batch as
        // a whole, and a client disconnect cancels every worker
        let (cancel, deadline) = self.cancel_token(&tenant);
        let sm = &mut self.metrics;
        tenant.read(|db, catalog| {
            // admission control first: plan each parsed item (the plans
            // are shape-cached, so the batch's own planner pass below
            // hits) and turn over-budget items into per-item errors
            let items: Vec<BatchItem> = if budget.is_set() {
                let stats = catalog.stats(db);
                eval::with_global_planner(|p| {
                    items
                        .into_iter()
                        .map(|item| match item {
                            BatchItem::Task(t, q) => {
                                let plan = p.plan(&q, t, &stats);
                                match budget_violation(budget, &plan) {
                                    Some(reason) => {
                                        sm.record_rejection(tenant.name());
                                        BatchItem::Bad(budget_reply(&reason, &plan))
                                    }
                                    None => BatchItem::Task(t, q),
                                }
                            }
                            bad => bad,
                        })
                        .collect()
                })
            } else {
                items
            };
            // one shared catalog (the tenant's pinned one, so the batch
            // both profits from and feeds the tenant's warm indexes) +
            // one planner pass for the whole batch, workers pulling
            // items off a shared cursor
            let good: Vec<(&ConjunctiveQuery, Task)> = items
                .iter()
                .filter_map(|i| match i {
                    BatchItem::Task(t, q) => Some((q, *t)),
                    BatchItem::Bad(_) => None,
                })
                .collect();
            let mut results = EvalCtx::new()
                .with_catalog(catalog)
                .with_cancel(cancel.clone())
                .batch_tasks(good, db, workers)
                .into_iter();
            let timed_out = deadline.is_some_and(|d| Instant::now() >= d);
            let data: Vec<String> = items
                .iter()
                .enumerate()
                .map(|(i, item)| match item {
                    BatchItem::Bad(reply) => format!("{i} {}", reply.terminal),
                    BatchItem::Task(..) => {
                        let r = results.next().expect("one result per parsed item");
                        let line = match r {
                            Err(EvalError::Cancelled) => {
                                cancelled_batch_terminal(sm, tenant.name(), timed_out)
                            }
                            Err(e) => format!("ERR {}: {e}", ErrKind::Eval),
                            // ANSWERS items enumerate here, at collect
                            // time, so the deadline can also trip
                            // mid-drain
                            Ok((Output::Answers(a), _plan)) => match a.collect() {
                                Ok(rel) => format!("OK {} rows", rel.len()),
                                Err(EvalError::Cancelled) => {
                                    cancelled_batch_terminal(sm, tenant.name(), timed_out)
                                }
                                Err(e) => format!("ERR {}: {e}", ErrKind::Eval),
                            },
                            Ok((out, _plan)) => render_output(out).terminal,
                        };
                        format!("{i} {line}")
                    }
                })
                .collect();
            Reply::ok_with(data, format!("batch of {n} items"))
        })
    }

    fn save(&mut self) -> Reply {
        // a degraded tenant's repair verb is RESUME, not SAVE: the gate
        // keeps the two paths distinct in transcripts and metrics
        let tenant = match self.writable() {
            Ok(t) => t,
            Err(e) => return e,
        };
        let Some(store) = self.state.store().cloned() else {
            return Reply::err(
                ErrKind::Storage,
                "server is in-memory (no --data-dir); SAVE has nothing to write to",
            );
        };
        match tenant.checkpoint(&store) {
            Ok((rows, bytes)) => Reply::ok(format!(
                "checkpointed {}: {rows} rows in a {bytes} byte snapshot, wal \
                 truncated",
                tenant.name()
            )),
            Err(e) => Reply::err(ErrKind::Storage, e),
        }
    }

    fn drop_db(&mut self, name: &str) -> Reply {
        if let Err(reply) = self.replica_guard() {
            return reply;
        }
        let reply = match self.state.drop_db(name) {
            Ok(()) => Reply::ok(format!("dropped database {name}")),
            Err(StateError::NoSuchDb) => {
                Reply::err(ErrKind::NoSuchDb, format!("no database named `{name}`"))
            }
            Err(StateError::Storage(msg)) => Reply::err(ErrKind::Storage, msg),
            Err(StateError::Exists) => unreachable!("drop_db never reports this"),
        };
        // a session that drops its own current tenant is left with no
        // database selected, not a ghost handle
        if self.current.as_ref().is_some_and(|t| t.name() == name && t.is_dropped()) {
            self.current = None;
        }
        reply
    }

    fn drop_relation(&mut self, relation: &str) -> Reply {
        let tenant = match self.writable() {
            Ok(t) => t,
            Err(e) => return e,
        };
        let (reply, wal) =
            tenant.mutate_durable(self.commit_window(), |db| match db.remove(relation) {
                Some(rel) => (
                    Reply::ok(format!("dropped {relation} ({} rows)", rel.len())),
                    Some(WalRecord::DropRelation { relation: relation.to_string() }),
                ),
                None => (
                    Reply::err(
                        ErrKind::NoSuchRelation,
                        format!("no relation named `{relation}`"),
                    ),
                    None,
                ),
            });
        self.finish_mutation(&tenant, reply, wal)
    }

    /// `SHIP` / `SHIP <db> <epoch> <offset>`: the replication pull
    /// surface. Bare `SHIP` lists every tenant's shippable position
    /// (`<name> <epoch> <wal-len>` lines, name order) so a replica can
    /// sync its tenant set; the addressed form ships the next segment
    /// past the replica's position — a header line (`wal <epoch>
    /// <offset> <total>` or `snapshot <epoch> <len>`) followed by hex
    /// payload lines. Transfers are pull-driven and capped at
    /// [`SHIP_MAX_BYTES`] per WAL reply, so a slow replica
    /// backpressures the primary the same way a slow `FETCH` client
    /// backpressures a cursor.
    fn ship(&mut self, db: Option<&str>, epoch: u64, offset: u64) -> Reply {
        let Some(store) = self.state.store().cloned() else {
            return Reply::err(
                ErrKind::Storage,
                "server is in-memory (no --data-dir); there is nothing to SHIP",
            );
        };
        let Some(name) = db else {
            let tenants = self.state.tenants();
            let data = tenants
                .iter()
                .filter_map(|t| {
                    let (epoch, len) = t.wal_position()?;
                    Some(format!("{} {epoch} {len}", t.name()))
                })
                .collect::<Vec<_>>();
            let n = data.len();
            return Reply::ok_with(data, format!("{n} tenants"));
        };
        let tenant = match self.state.tenant(name) {
            Ok(t) => t,
            Err(_) => {
                return Reply::err(
                    ErrKind::NoSuchDb,
                    format!("no database named `{name}`"),
                )
            }
        };
        match tenant.ship(&store, epoch, offset, SHIP_MAX_BYTES) {
            Ok(ShipSegment::Wal { epoch, offset, total, bytes }) => {
                let n = bytes.len();
                let mut data = vec![format!("wal {epoch} {offset} {total}")];
                data.extend(bytes.chunks(SHIP_LINE_BYTES).map(hex_encode));
                Reply::ok_with(data, format!("{n} bytes"))
            }
            Ok(ShipSegment::Snapshot { epoch, bytes }) => {
                let n = bytes.len();
                let mut data = vec![format!("snapshot {epoch} {n}")];
                data.extend(bytes.chunks(SHIP_LINE_BYTES).map(hex_encode));
                Reply::ok_with(data, format!("{n} bytes"))
            }
            Err(e) => Reply::err(ErrKind::Storage, e),
        }
    }

    fn stats(&mut self, db: Option<&str>) -> Reply {
        match db {
            None => self.stats_summary(),
            Some(name) => self.stats_detail(name),
        }
    }

    fn stats_summary(&mut self) -> Reply {
        let mut data = Vec::new();
        data.push(format!("tenants: {}", self.state.n_tenants()));
        data.push(format!("using: {}", self.current.as_ref().map_or("-", |t| t.name())));
        for t in self.state.tenants() {
            let (rels, tuples) = t.sizes();
            data.push(format!("db {}: {rels} relations, {tuples} tuples", t.name()));
        }
        let (shapes, cache) =
            eval::with_global_planner(|p| (p.cache().len(), p.cache().stats()));
        data.push(format!(
            "plan-cache: {shapes} shapes, {} hits, {} misses, {} uncacheable",
            cache.hits, cache.misses, cache.uncacheable
        ));
        Reply::ok_with(data, "")
    }

    /// `STATS <name>`: relation count, total rows, generation, the
    /// per-relation schema, and durability status — enough to verify a
    /// recovery (or any mutation) without querying data.
    fn stats_detail(&mut self, name: &str) -> Reply {
        let tenant = match self.state.tenant(name) {
            Ok(t) => t,
            Err(_) => {
                return Reply::err(
                    ErrKind::NoSuchDb,
                    format!("no database named `{name}`"),
                )
            }
        };
        let d = tenant.detail();
        let mut data = vec![format!(
            "db {name}: {} relations, {} tuples, generation {}",
            d.n_relations, d.n_tuples, d.generation
        )];
        for (rel, arity, rows) in &d.relations {
            data.push(format!("rel {rel}: arity {arity}, {rows} rows"));
        }
        let (cat, _) = tenant.read_meta();
        data.push(format!(
            "catalog: {} hits, {} misses, {} invalidations, {} cap-evictions; \
             memo {} views, {} hash-indexes, {} artifacts",
            cat.hits,
            cat.misses,
            cat.invalidations,
            cat.cap_evictions,
            cat.views,
            cat.hash_indexes,
            cat.artifacts
        ));
        // windowed traffic rates from the metrics history ring: total
        // command QPS and error rate for this tenant, over the ring's
        // full span. `n/a` until two snapshots exist (`METRICS RATE` or
        // the periodic dumper capture them).
        let scope_name = metrics::tenant_scope(name);
        match self.state.metrics().history().rates(None, Some(&scope_name)) {
            Some(report) => {
                // fold from +0.0: an empty `Sum<f64>` is -0.0, which
                // would render as `-0.000/s` for an idle tenant
                let qps: f64 = report
                    .rates
                    .iter()
                    .filter(|(_, n, _)| n.starts_with("cmd.") && n.ends_with(".calls"))
                    .fold(0.0, |acc, (_, _, r)| acc + r);
                let errs: f64 = report
                    .rates
                    .iter()
                    .filter(|(_, n, _)| n.as_str() == "errors")
                    .fold(0.0, |acc, (_, _, r)| acc + r);
                data.push(format!(
                    "traffic: qps={qps:.3}/s err-rate={errs:.3}/s over {:.3}s",
                    report.span.as_secs_f64()
                ));
            }
            None => data.push("traffic: n/a (need 2 metric snapshots)".to_string()),
        }
        match (d.wal_bytes, self.state.store()) {
            (Some(wal), Some(store)) => {
                let snap = store
                    .snapshot_size(name)
                    .ok()
                    .flatten()
                    .map_or("none".to_string(), |b| format!("{b} bytes"));
                data.push(format!("storage: wal {wal} bytes, snapshot {snap}"));
            }
            _ => data.push("storage: none (in-memory)".to_string()),
        }
        // replica / failure-state lines appear only on replicas / when
        // something is wrong, so healthy primary transcripts (and
        // their goldens) are unchanged
        if let Some(primary) = self.state.replica_of() {
            let scope =
                self.state.metrics().registry().scope(&metrics::tenant_scope(name));
            data.push(format!(
                "replica: of {primary}, epoch {}, lag {} bytes",
                scope.gauge("replica.epoch").get(),
                scope.gauge("replica.lag_bytes").get()
            ));
        }
        if d.wal_poisoned == Some(true) {
            data.push("wal: poisoned (appends refused until RESUME)".to_string());
        }
        if let Some(reason) = &d.degraded {
            data.push(format!(
                "mode: read-only (degraded: {reason}); RESUME {name} to restore"
            ));
        }
        Reply::ok_with(data, "")
    }

    /// `METRICS [<name>]`: refresh derived gauges and dump the
    /// registry — every scope, or just one tenant's.
    fn metrics_dump(&mut self, db: Option<&str>) -> Reply {
        if let Some(name) = db {
            if self.state.tenant(name).is_err() {
                return Reply::err(
                    ErrKind::NoSuchDb,
                    format!("no database named `{name}`"),
                );
            }
        }
        let lines = metrics::render(&self.state, db);
        let info = match db {
            Some(name) => format!("metrics for {name}"),
            None => "metrics".to_string(),
        };
        Reply::ok_with(lines, info)
    }

    /// `METRICS RATE [<name>] [<window-s>]`: capture a counter snapshot
    /// into the history ring, then difference the newest snapshot
    /// against the oldest one inside the window into per-second rates.
    /// Two captures are needed before any rate exists — the first call
    /// seeds the ring and reports `n/a`.
    fn metrics_rate(&mut self, db: Option<&str>, window_s: Option<u64>) -> Reply {
        if let Some(name) = db {
            if self.state.tenant(name).is_err() {
                return Reply::err(
                    ErrKind::NoSuchDb,
                    format!("no database named `{name}`"),
                );
            }
        }
        let shared = self.metrics.shared();
        shared.capture_history();
        let scope_filter = db.map(metrics::tenant_scope);
        let window = window_s.map(Duration::from_secs);
        match shared.history().rates(window, scope_filter.as_deref()) {
            None => Reply::ok_with(
                vec!["rate: n/a (need 2 metric snapshots)".to_string()],
                "metrics-rate",
            ),
            Some(report) => {
                let mut data = vec![format!(
                    "window={:.6}s snapshots={}",
                    report.span.as_secs_f64(),
                    report.snapshots
                )];
                for (scope, name, rate) in &report.rates {
                    data.push(format!("{scope} {name} rate={rate:.3}/s"));
                }
                Reply::ok_with(data, "metrics-rate")
            }
        }
    }

    /// `PROFILE <name>`: a tenant's retained query traces, oldest
    /// first — one `trace …` header per query, then its span tree as
    /// `span depth=… name=… ns=…` lines (machine-ish on purpose; cqsh
    /// pretty-prints them). Requires `cqd --profile N`.
    fn profile(&mut self, db: &str) -> Reply {
        let shared = self.metrics.shared();
        if !shared.profiling() {
            return Reply::err(
                ErrKind::TracingOff,
                "per-query tracing is off; start cqd with --profile <n>",
            );
        }
        if self.state.tenant(db).is_err() {
            return Reply::err(ErrKind::NoSuchDb, format!("no database named `{db}`"));
        }
        let traces = shared.recent_traces(db);
        let mut data = Vec::new();
        for tr in &traces {
            data.push(format!(
                "trace db={} spans={} total-ns={} query={:?}",
                tr.db,
                tr.span_count(),
                tr.total.as_nanos(),
                tr.query
            ));
            tr.visit(|depth, sp| {
                let mut line = format!(
                    "span depth={depth} name={} ns={}",
                    sp.name,
                    sp.elapsed.as_nanos()
                );
                for (k, v) in &sp.attrs {
                    line.push_str(&format!(" {k}={v}"));
                }
                data.push(line);
            });
        }
        let n = traces.len();
        Reply::ok_with(data, format!("{n} traces"))
    }

    /// `SET BUDGET <db> …`: adjust a tenant's admission-control caps.
    /// The two caps are independent; `NONE` clears both. The new limit
    /// set is logged so it survives a restart.
    fn set_budget(&mut self, db: &str, setting: BudgetSetting) -> Reply {
        let tenant = match self.named_writable(db) {
            Ok(t) => t,
            Err(e) => return e,
        };
        let reply = match setting {
            BudgetSetting::MaxExponent(e) => {
                tenant.set_max_exponent(Some(e));
                Reply::ok(format!("budget for {db}: max-exponent {e:.2}"))
            }
            BudgetSetting::MaxRows(n) => {
                tenant.set_max_rows(Some(n));
                Reply::ok(format!("budget for {db}: max-rows {n}"))
            }
            BudgetSetting::Clear => {
                tenant.clear_budget();
                Reply::ok(format!("budget for {db}: cleared"))
            }
        };
        let wal = tenant.persist_limits_durable(self.commit_window());
        Self::walled(&tenant, reply, wal)
    }

    /// `SET TIMEOUT <db> <ms>|NONE`: the tenant's per-query deadline,
    /// enforced cooperatively inside the engine's inner loops. Logged
    /// like budgets, so it survives a restart.
    fn set_timeout(&mut self, db: &str, ms: Option<u64>) -> Reply {
        let tenant = match self.named_writable(db) {
            Ok(t) => t,
            Err(e) => return e,
        };
        tenant.set_timeout_ms(ms);
        let reply = match ms {
            Some(ms) => Reply::ok(format!("timeout for {db}: {ms} ms")),
            None => Reply::ok(format!("timeout for {db}: cleared")),
        };
        let wal = tenant.persist_limits_durable(self.commit_window());
        Self::walled(&tenant, reply, wal)
    }

    /// Resolve a tenant by name for a limits mutation, refusing while
    /// this server is a replica or the tenant is degraded (limits are
    /// WAL-backed like any other mutation).
    fn named_writable(&mut self, db: &str) -> Result<Arc<Tenant>, Reply> {
        self.replica_guard()?;
        let tenant = match self.state.tenant(db) {
            Ok(t) => t,
            Err(_) => {
                return Err(Reply::err(
                    ErrKind::NoSuchDb,
                    format!("no database named `{db}`"),
                ))
            }
        };
        match tenant.degraded_reason() {
            Some(reason) => Err(degraded_reply(db, &reason)),
            None => Ok(tenant),
        }
    }

    /// `RESUME <db>`: repair a degraded tenant and restore read-write.
    /// On a persistent server this checkpoints — the snapshot captures
    /// everything in memory (including mutations whose append failed)
    /// and the WAL rolls to a fresh segment, clearing any poison.
    fn resume(&mut self, db: &str) -> Reply {
        if let Err(reply) = self.replica_guard() {
            return reply;
        }
        let tenant = match self.state.tenant(db) {
            Ok(t) => t,
            Err(_) => {
                return Reply::err(ErrKind::NoSuchDb, format!("no database named `{db}`"))
            }
        };
        let Some(store) = self.state.store().cloned() else {
            // in-memory tenants have no storage to fail, but RESUME is
            // still the recovery verb — make it total
            tenant.clear_degraded();
            return Reply::ok(format!("{db} is read-write (in-memory server)"));
        };
        match tenant.checkpoint(&store) {
            Ok((rows, bytes)) => {
                tenant.clear_degraded();
                Reply::ok(format!(
                    "resumed {db}: read-write restored ({rows} rows in a {bytes} \
                     byte snapshot, fresh wal segment)"
                ))
            }
            Err(e) => Reply::err(
                ErrKind::Storage,
                format!("RESUME {db} failed; still read-only: {e}"),
            ),
        }
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        // a vanished connection releases its cursors — the open-cursor
        // gauge must not count the dead
        let entries: Vec<CursorEntry> = self.cursors.drain().map(|(_, e)| e).collect();
        for entry in entries {
            self.metrics.record_cursor_closed(entry.tenant.name(), false);
        }
    }
}

/// The `ERR degraded` reply: the tenant is read-only after a storage
/// failure; reads still serve, `RESUME` repairs.
fn degraded_reply(db: &str, reason: &str) -> Reply {
    Reply::err(
        ErrKind::Degraded,
        format!(
            "`{db}` is read-only after a storage failure ({reason}); reads still \
             serve — RESUME {db} to restore read-write"
        ),
    )
}

/// The `ERR timeout` reply for a cancelled evaluation: deadline trips
/// cite the plan's cost exponent and the lower-bound hypothesis that
/// makes the cost unavoidable (same citation as budget rejections);
/// disconnect trips just say the client went away.
fn timeout_reply(
    plan: &QueryPlan,
    elapsed: Duration,
    timeout: Option<Duration>,
    timed_out: bool,
) -> Reply {
    if timed_out {
        let limit_ms = timeout.map_or(0, |t| t.as_millis());
        Reply::err(
            ErrKind::Timeout,
            format!(
                "evaluation exceeded the {limit_ms} ms deadline after {} ms; plan \
                 cost m^{:.2} — consistent with: {}",
                elapsed.as_millis(),
                plan.cost.exponent,
                cq_planner::explain::rejection_citation(plan)
            ),
        )
    } else {
        Reply::err(
            ErrKind::Timeout,
            format!(
                "evaluation cancelled after {} ms (client disconnected); plan cost \
                 m^{:.2}",
                elapsed.as_millis(),
                plan.cost.exponent
            ),
        )
    }
}

/// The tenant's wire-level [`Budget`] as the planner's [`EvalBudget`]:
/// the admission logic (and its human-readable violation messages)
/// lives in `cq_planner::ctx` now, shared with every `EvalCtx` caller.
fn eval_budget(budget: Budget) -> EvalBudget {
    EvalBudget { max_exponent: budget.max_exponent, max_rows: budget.max_rows }
}

/// Does `plan` break `budget`? Returns the human-readable reason.
fn budget_violation(budget: Budget, plan: &QueryPlan) -> Option<String> {
    eval_budget(budget).violation(plan)
}

/// The `ERR budget` reply for a rejected plan, carrying the EXPLAIN
/// lower-bound citation (e.g. "Triangle Hypothesis (Hypothesis 2) — no
/// O(m^{1.00-eps}) algorithm exists …").
fn budget_reply(reason: &str, plan: &QueryPlan) -> Reply {
    Reply::err(
        ErrKind::Budget,
        format!("{reason}; rejected: {}", cq_planner::explain::rejection_citation(plan)),
    )
}

/// The per-item `ERR timeout` terminal for a cancelled batch item,
/// attributed (and counted) as a deadline trip or a client disconnect.
fn cancelled_batch_terminal(
    sm: &mut SessionMetrics,
    db: &str,
    timed_out: bool,
) -> String {
    if timed_out {
        sm.record_timeout(db);
        format!(
            "ERR {}: batch exceeded the tenant's SET TIMEOUT deadline",
            ErrKind::Timeout
        )
    } else {
        sm.record_cancellation(db);
        format!("ERR {}: evaluation cancelled (client disconnected)", ErrKind::Timeout)
    }
}

/// Render an execution output as one full reply. `Answers` outputs are
/// collected — the callers that stream instead (the `ANSWERS` flow
/// path, cursors) never reach here.
fn render_output(out: Output) -> Reply {
    match out {
        Output::Decision(b) => Reply::ok(b),
        Output::Count(n) => Reply::ok(n),
        Output::Answers(a) => match a.collect() {
            Ok(rel) => Reply::ok_with(render_rows(&rel), format!("{} rows", rel.len())),
            Err(e) => Reply::err(ErrKind::Eval, e),
        },
    }
}

/// A `BATCH` item line: `DECIDE|COUNT|ANSWERS <query-text>`.
fn parse_batch_item(line: &str) -> BatchItem {
    let (verb, src) = match line.find(char::is_whitespace) {
        Some(i) => (&line[..i], line[i..].trim_start()),
        None => (line, ""),
    };
    let Some(task) = query_task(&verb.to_ascii_uppercase()) else {
        return BatchItem::Bad(Reply::err(
            ErrKind::Usage,
            format!("batch items are DECIDE|COUNT|ANSWERS <query>, got `{verb}`"),
        ));
    };
    if src.is_empty() {
        return BatchItem::Bad(Reply::err(ErrKind::Usage, "batch item needs a query"));
    }
    match parse_query(src) {
        Ok(q) => BatchItem::Task(task, q),
        Err(e) => BatchItem::Bad(Reply::err(ErrKind::Parse, e)),
    }
}

/// A parse error as a reply: the `ERR parse` terminal plus the source
/// snippet (offending line + caret) as data lines.
fn parse_error_reply(src: &str, e: &ParseError) -> Reply {
    let data = match e.context(src) {
        Some((line, caret)) => vec![line, caret],
        None => Vec::new(),
    };
    Reply::err_with(ErrKind::Parse, data, e)
}

/// Handle to a running server: the bound address, the shared state, and
/// the acceptor/worker threads. Dropping (or [`Server::shutdown`]) stops
/// accepting and joins the pool once in-flight connections close.
pub struct Server {
    addr: SocketAddr,
    state: Arc<ServerState>,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Bind and start serving on `addr` (use port 0 for an ephemeral
    /// port; read it back from [`Server::local_addr`]) with a pool of
    /// `workers` reusable connection-handling threads.
    ///
    /// Connections beyond the pool size are not queued behind
    /// long-lived sessions: when every pooled worker is occupied, the
    /// acceptor serves the new connection on a detached overflow
    /// thread, so `workers` idle clients can never starve the next one.
    pub fn bind(addr: impl ToSocketAddrs, workers: usize) -> std::io::Result<Server> {
        Server::bind_with_state(addr, workers, Arc::new(ServerState::new()))
    }

    /// [`Server::bind`] over pre-built state — the persistent-mode
    /// entry point: recover tenants first ([`ServerState::recover`]),
    /// then take traffic.
    pub fn bind_with_state(
        addr: impl ToSocketAddrs,
        workers: usize,
        state: Arc<ServerState>,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let (tx, rx) = mpsc::channel::<TcpStream>();
        let rx = Arc::new(Mutex::new(rx));
        // connections handed to the pool but not yet finished: queued
        // (sent, not received) plus in service. The acceptor routes
        // around the pool whenever this reaches the pool size.
        let occupied = Arc::new(AtomicUsize::new(0));

        let workers = workers.max(1);
        // pool-saturation gauges: `workers.busy` mirrors `occupied`
        // (approximate under races — it is observability, not control)
        let server_scope = state.metrics().server_scope();
        server_scope.gauge("workers.pool").set(workers as u64);
        let busy = server_scope.gauge("workers.busy");
        let mut pool = Vec::with_capacity(workers);
        for i in 0..workers {
            let rx = Arc::clone(&rx);
            let state = Arc::clone(&state);
            let stop = Arc::clone(&stop);
            let occupied = Arc::clone(&occupied);
            let busy = Arc::clone(&busy);
            let handle = std::thread::Builder::new()
                .name(format!("cqd-worker-{i}"))
                .spawn(move || loop {
                    // take the next connection, then release the
                    // receiver lock before serving it
                    let next = {
                        let guard = rx.lock().unwrap_or_else(|p| p.into_inner());
                        guard.recv()
                    };
                    match next {
                        Ok(stream) => {
                            serve_connection(stream, Arc::clone(&state), &stop);
                            let prev = occupied.fetch_sub(1, Ordering::SeqCst);
                            busy.set(prev.saturating_sub(1) as u64);
                        }
                        Err(_) => break, // acceptor gone: drain and exit
                    }
                })
                .expect("spawn worker thread");
            pool.push(handle);
        }

        // detached overflow threads are counted and capped: beyond
        // `workers * OVERFLOW_PER_WORKER` of them, new connections are
        // shed with a best-effort `ERR busy` instead of an unbounded
        // thread-per-connection pile-up
        let overflow = Arc::new(AtomicUsize::new(0));
        let overflow_cap = workers * OVERFLOW_PER_WORKER;
        let overflow_gauge = server_scope.gauge("workers.overflow");
        let shed = server_scope.counter("connections.shed");

        let acceptor = {
            let stop = Arc::clone(&stop);
            let state = Arc::clone(&state);
            std::thread::Builder::new()
                .name("cqd-acceptor".to_string())
                .spawn(move || {
                    for conn in listener.incoming() {
                        if stop.load(Ordering::SeqCst) {
                            break;
                        }
                        let Ok(stream) = conn else { continue };
                        // claim a pool slot; the count is conservative
                        // (decremented only when a session ends), so a
                        // race at worst spawns one extra thread
                        let prev = occupied.fetch_add(1, Ordering::SeqCst);
                        busy.set((prev + 1).min(workers) as u64);
                        if prev < workers {
                            if tx.send(stream).is_err() {
                                break;
                            }
                        } else {
                            let prev = occupied.fetch_sub(1, Ordering::SeqCst);
                            busy.set(prev.saturating_sub(1) as u64);
                            let prev_overflow = overflow.fetch_add(1, Ordering::SeqCst);
                            if prev_overflow >= overflow_cap {
                                overflow.fetch_sub(1, Ordering::SeqCst);
                                shed.inc();
                                shed_connection(stream);
                                continue;
                            }
                            overflow_gauge.set((prev_overflow + 1) as u64);
                            let state = Arc::clone(&state);
                            let stop = Arc::clone(&stop);
                            let counter = Arc::clone(&overflow);
                            let gauge = Arc::clone(&overflow_gauge);
                            let spawned = std::thread::Builder::new()
                                .name("cqd-overflow".to_string())
                                .spawn(move || {
                                    serve_connection(stream, state, &stop);
                                    let prev = counter.fetch_sub(1, Ordering::SeqCst);
                                    gauge.set(prev.saturating_sub(1) as u64);
                                });
                            if spawned.is_err() {
                                // out of threads: drop the connection
                                // (the client sees EOF) rather than
                                // queuing it behind the full pool; the
                                // unrun closure is dropped, so undo its
                                // slot here
                                let prev = overflow.fetch_sub(1, Ordering::SeqCst);
                                overflow_gauge.set(prev.saturating_sub(1) as u64);
                                shed.inc();
                                continue;
                            }
                        }
                    }
                    // tx drops here: idle workers see the closed channel
                })
                .expect("spawn acceptor thread")
        };

        Ok(Server { addr, state, stop, acceptor: Some(acceptor), workers: pool })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared tenant registry (for in-process inspection).
    pub fn state(&self) -> Arc<ServerState> {
        Arc::clone(&self.state)
    }

    /// Block on the acceptor thread — `cqd`'s forever-run mode.
    pub fn wait(mut self) {
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }

    /// Graceful shutdown: stop accepting, signal every session's read
    /// loop, and join the pool. In-flight commands finish their reply;
    /// idle connections are closed at the next read tick (≤ 200 ms), so
    /// shutdown never blocks on a client that stays silent. (Overflow
    /// threads are detached and observe the same stop signal.)
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // wake the blocking accept with a no-op connection
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// How often a blocked connection read wakes up to check the server's
/// stop flag (bounds shutdown latency with idle clients connected).
const READ_TICK: std::time::Duration = std::time::Duration::from_millis(200);

/// Cap on detached overflow threads, as a multiple of the pool size:
/// a server with `w` workers serves at most `w * (1 + this)` live
/// connections before shedding new ones with `ERR busy`.
const OVERFLOW_PER_WORKER: usize = 8;

/// Best-effort saturation reply: tell the client why before closing.
/// The write may fail (the client may already be gone) — the stream is
/// dropped either way.
fn shed_connection(stream: TcpStream) {
    let mut stream = stream;
    let _ = Reply::err(
        ErrKind::Busy,
        "server saturated (worker pool and overflow slots all busy); retry later",
    )
    .write_to(&mut stream);
}

/// Is the client gone? A nonblocking one-byte peek distinguishes EOF or
/// reset (gone) from "no request bytes yet" (alive, just waiting). The
/// session and its reader run on one thread, so briefly flipping the
/// shared socket nonblocking cannot race an in-progress blocking read.
fn connection_gone(stream: &TcpStream) -> bool {
    if stream.set_nonblocking(true).is_err() {
        return true;
    }
    let mut byte = [0u8; 1];
    let gone = match stream.peek(&mut byte) {
        Ok(0) => true, // orderly shutdown: EOF
        Ok(_) => false,
        Err(e) => !matches!(
            e.kind(),
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
        ),
    };
    let _ = stream.set_nonblocking(false);
    gone
}

/// Serve one connection to completion: read lines, feed the session,
/// write framed replies. IO errors or EOF end the session quietly; the
/// `stop` flag ends it at the next read tick, so idle clients can
/// never block [`Server::shutdown`].
fn serve_connection(stream: TcpStream, state: Arc<ServerState>, stop: &AtomicBool) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(READ_TICK));
    let Ok(read_half) = stream.try_clone() else { return };
    let probe_half = stream.try_clone();
    let scope = state.metrics().server_scope();
    scope.counter("connections.total").inc();
    let open_connections = scope.gauge("connections.open");
    open_connections.add(1);
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    let mut session = Session::new(state);
    if let Ok(probe) = probe_half {
        // long evaluations poll this: a client that hung up mid-query
        // gets its work cancelled instead of running to completion
        session.set_cancel_probe(move || connection_gone(&probe));
    }
    let mut buf = Vec::new();
    'sessions: loop {
        buf.clear();
        // accumulate one line across read-timeout ticks: a timeout
        // leaves any partial bytes in `buf` and lets us poll `stop`
        loop {
            match reader.read_until(b'\n', &mut buf) {
                Ok(0) => break 'sessions, // EOF
                Ok(_) if buf.last() == Some(&b'\n') => break,
                Ok(_) => break, // EOF mid-line: serve the partial line
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    if stop.load(Ordering::SeqCst) {
                        break 'sessions;
                    }
                }
                Err(_) => break 'sessions, // broken connection
            }
        }
        while matches!(buf.last(), Some(b'\n') | Some(b'\r')) {
            buf.pop();
        }
        let wrote = match session.handle_action(&buf) {
            Some(Action::Reply(reply)) => {
                reply.write_to(&mut writer).is_ok() && writer.flush().is_ok()
            }
            // streamed ANSWERS: rows go out in bounded chunks as the
            // stream is pulled; a slow client backpressures here
            Some(Action::Stream(flow)) => session.drain_flow(*flow, &mut writer).is_ok(),
            None => true,
        };
        if !wrote {
            break;
        }
        if session.finished() {
            break;
        }
    }
    open_connections.sub(1);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn session() -> Session {
        Session::new(Arc::new(ServerState::new()))
    }

    /// Drive a full scripted session, returning each line's reply.
    fn drive(s: &mut Session, lines: &[&str]) -> Vec<Option<Reply>> {
        lines.iter().map(|l| s.handle_line(l)).collect()
    }

    #[test]
    fn create_use_insert_query() {
        let mut s = session();
        assert_eq!(s.handle_line("PING").unwrap().terminal, "OK pong");
        assert!(s.handle_line("CREATE DB t").unwrap().is_ok());
        assert!(s.handle_line("USE t").unwrap().is_ok());
        assert!(s.handle_line("INSERT R(1, 10)").unwrap().is_ok());
        assert!(s.handle_line("INSERT R(2, 10)").unwrap().is_ok());
        assert!(s.handle_line("INSERT S(10, 7)").unwrap().is_ok());
        let r = s.handle_line("COUNT q(x, z) :- R(x, y), S(y, z)").unwrap();
        assert_eq!(r.terminal, "OK 2");
        let r = s.handle_line("ANSWERS q(x, z) :- R(x, y), S(y, z)").unwrap();
        assert_eq!(r.data, vec!["1 7", "2 7"]);
        assert_eq!(r.terminal, "OK 2 rows");
        let r = s.handle_line("DECIDE q() :- R(x, y), S(y, z)").unwrap();
        assert_eq!(r.terminal, "OK true");
    }

    #[test]
    fn errors_are_structured_not_fatal() {
        let mut s = session();
        // before USE
        let r = s.handle_line("COUNT q(x) :- R(x)").unwrap();
        assert!(r.terminal.starts_with("ERR no-db:"), "{}", r.terminal);
        assert!(s
            .handle_line("USE nope")
            .unwrap()
            .terminal
            .starts_with("ERR no-such-db"));
        s.handle_line("CREATE DB t");
        s.handle_line("USE t");
        // parse error carries the caret snippet as data lines
        let r = s.handle_line("COUNT q(x) :- R(x) ; S(x)").unwrap();
        assert!(r.terminal.starts_with("ERR parse:"), "{}", r.terminal);
        assert_eq!(r.data.len(), 2, "snippet line + caret line: {:?}", r.data);
        assert!(r.data[0].contains("; S(x)"));
        assert!(r.data[1].contains('^'));
        // semantic error
        let r = s.handle_line("COUNT q(w) :- R(x)").unwrap();
        assert!(r.terminal.starts_with("ERR parse:"), "{}", r.terminal);
        // eval error (missing relation)
        let r = s.handle_line("COUNT q(x) :- Missing(x)").unwrap();
        assert!(r.terminal.starts_with("ERR eval:"), "{}", r.terminal);
        // the session still works
        assert_eq!(s.handle_line("PING").unwrap().terminal, "OK pong");
        assert!(!s.finished());
    }

    #[test]
    fn load_block_bulk_loads() {
        let mut s = session();
        s.handle_line("CREATE DB t");
        s.handle_line("USE t");
        let replies =
            drive(&mut s, &["LOAD Edge 2", "1 2", "2 3", "1, 2", "", "3 1", "END"]);
        assert_eq!(replies[0].as_ref().unwrap().terminal, "OK loading; rows until END");
        for r in &replies[1..6] {
            assert!(r.is_none(), "rows are consumed silently");
        }
        let done = replies[6].as_ref().unwrap();
        assert_eq!(done.terminal, "OK loaded 4 rows into Edge (3 total)"); // dedup
                                                                           // arity mismatch in a row: reported at END, nothing committed
        let replies = drive(&mut s, &["LOAD Edge 2", "7 8 9", "END"]);
        let done = replies[2].as_ref().unwrap();
        assert!(done.terminal.starts_with("ERR arity-mismatch"), "{}", done.terminal);
        let r = s.handle_line("COUNT q(x, y) :- Edge(x, y)").unwrap();
        assert_eq!(r.terminal, "OK 3");
        // LOAD against an existing relation with the wrong arity fails fast
        let r = s.handle_line("LOAD Edge 3").unwrap();
        assert!(r.terminal.starts_with("ERR arity-mismatch"), "{}", r.terminal);
        // bad value rows
        let replies = drive(&mut s, &["LOAD Edge 2", "1 x", "END"]);
        assert!(replies[2].as_ref().unwrap().terminal.starts_with("ERR bad-value"));
    }

    #[test]
    fn batch_block_reports_per_item() {
        let mut s = session();
        s.handle_line("CREATE DB t");
        s.handle_line("USE t");
        drive(&mut s, &["LOAD R 2", "1 10", "2 10", "END", "LOAD S 2", "10 7", "END"]);
        let replies = drive(
            &mut s,
            &[
                "BATCH",
                "COUNT q(x, z) :- R(x, y), S(y, z)",
                "DECIDE q() :- R(x, y), S(y, z)",
                "ANSWERS q(x, z) :- R(x, y), S(y, z)",
                "COUNT q(x) :- Missing(x)",
                "FROB q(x) :- R(x, y)",
                "COUNT q(x :- R(x, y)",
                "END",
            ],
        );
        let done = replies.last().unwrap().as_ref().unwrap();
        assert_eq!(done.terminal, "OK batch of 6 items");
        assert_eq!(done.data[0], "0 OK 2");
        assert_eq!(done.data[1], "1 OK true");
        assert_eq!(done.data[2], "2 OK 2 rows");
        assert!(done.data[3].starts_with("3 ERR eval:"), "{}", done.data[3]);
        assert!(done.data[4].starts_with("4 ERR usage:"), "{}", done.data[4]);
        assert!(done.data[5].starts_with("5 ERR parse:"), "{}", done.data[5]);
    }

    #[test]
    fn noop_mutations_keep_the_warm_catalog() {
        let state = Arc::new(ServerState::new());
        let mut s = Session::new(Arc::clone(&state));
        s.handle_line("CREATE DB t");
        s.handle_line("USE t");
        s.handle_line("INSERT R(1, 2)");
        s.handle_line("COUNT q(x, y) :- R(x, y)"); // warm the pinned catalog
        let t = state.tenant("t").unwrap();
        let warm = t.read(|_, cat| cat.snapshot().misses);
        assert!(warm > 0, "the count must have built into the catalog");
        // duplicate INSERT: honest reply, no generation bump, catalog kept
        let r = s.handle_line("INSERT R(1, 2)").unwrap();
        assert_eq!(r.terminal, "OK duplicate ignored in R (1 total)");
        assert_eq!(t.read(|_, cat| cat.snapshot().misses), warm, "catalog survives");
        // all-duplicate LOAD: also a no-op
        let r = drive(&mut s, &["LOAD R 2", "1 2", "END"]);
        assert_eq!(r[2].as_ref().unwrap().terminal, "OK loaded 1 rows into R (1 total)");
        assert_eq!(t.read(|_, cat| cat.snapshot().misses), warm, "catalog survives");
        // a real insert still invalidates (fresh pinned catalog)
        s.handle_line("INSERT R(9, 9)");
        assert_eq!(t.read(|_, cat| cat.snapshot().misses), 0, "fresh after mutation");
        assert_eq!(s.handle_line("COUNT q(x, y) :- R(x, y)").unwrap().terminal, "OK 2");
    }

    #[test]
    fn batch_feeds_the_tenant_pinned_catalog() {
        let state = Arc::new(ServerState::new());
        let mut s = Session::new(Arc::clone(&state));
        s.handle_line("CREATE DB t");
        s.handle_line("USE t");
        drive(&mut s, &["LOAD R 2", "1 10", "2 10", "END", "LOAD S 2", "10 7", "END"]);
        let tenant = state.tenant("t").unwrap();
        let misses_before = tenant.read(|_, cat| cat.snapshot().misses);
        let batch = ["BATCH", "ANSWERS q(x, z) :- R(x, y), S(y, z)", "END"];
        drive(&mut s, &batch);
        let misses_after_first = tenant.read(|_, cat| cat.snapshot().misses);
        assert!(
            misses_after_first > misses_before,
            "the batch must build into the tenant's pinned catalog"
        );
        // a repeat of the same batch is all-warm on the pinned catalog
        drive(&mut s, &batch);
        let misses_after_repeat = tenant.read(|_, cat| cat.snapshot().misses);
        assert_eq!(misses_after_repeat, misses_after_first, "second batch is warm");
    }

    #[test]
    fn explain_and_stats_render() {
        let mut s = session();
        s.handle_line("CREATE DB t");
        s.handle_line("USE t");
        drive(&mut s, &["LOAD R1 2", "1 2", "END", "LOAD R2 2", "2 3", "END"]);
        let r = s.handle_line("EXPLAIN COUNT q(x, z) :- R1(x, y), R2(y, z)").unwrap();
        assert!(r.is_ok());
        assert_eq!(r.terminal, "OK");
        let text = r.data.join("\n");
        assert!(text.contains("PLAN for"), "{text}");
        assert!(text.contains("task:"), "{text}");
        // EXPLAIN echoes the canonical query text (Display round-trip)
        assert!(text.contains("q(x, z) :- R1(x, y), R2(y, z)"), "{text}");
        let r = s.handle_line("EXPLAIN ACCESS q(x, y) :- R1(x, y)").unwrap();
        assert!(r.is_ok(), "{}", r.terminal);
        let r = s.handle_line("STATS").unwrap();
        assert_eq!(r.data[0], "tenants: 1");
        assert_eq!(r.data[1], "using: t");
        assert_eq!(r.data[2], "db t: 2 relations, 2 tuples");
        assert!(r.data[3].starts_with("plan-cache:"), "{}", r.data[3]);
        assert_eq!(r.terminal, "OK");
    }

    #[test]
    fn boolean_answers_render_the_nullary_row() {
        let mut s = session();
        s.handle_line("CREATE DB t");
        s.handle_line("USE t");
        s.handle_line("INSERT R(1, 2)");
        let r = s.handle_line("ANSWERS q() :- R(x, y)").unwrap();
        assert_eq!(r.data, vec!["()"]); // {()}: the Boolean "yes" relation
        assert_eq!(r.terminal, "OK 1 rows");
        let r = s.handle_line("ANSWERS q() :- R(x, x)").unwrap();
        assert_eq!(r.data, Vec::<String>::new()); // {}: the Boolean "no"
        assert_eq!(r.terminal, "OK 0 rows");
        // nullary INSERT is still accepted at the data layer
        let r = s.handle_line("INSERT T()").unwrap();
        assert_eq!(r.terminal, "OK inserted 1 row into T (1 total)");
    }

    #[test]
    fn drop_relation_is_tenant_scoped() {
        let mut s = session();
        s.handle_line("CREATE DB a");
        s.handle_line("CREATE DB b");
        s.handle_line("USE a");
        s.handle_line("INSERT R(1, 2)");
        s.handle_line("USE b");
        s.handle_line("INSERT R(5, 6)");
        // dropping b's R leaves a's R untouched
        let r = s.handle_line("DROP R").unwrap();
        assert_eq!(r.terminal, "OK dropped R (1 rows)");
        let r = s.handle_line("COUNT q(x, y) :- R(x, y)").unwrap();
        assert!(r.terminal.starts_with("ERR eval:"), "{}", r.terminal);
        let r = s.handle_line("DROP R").unwrap();
        assert_eq!(r.terminal, "ERR no-such-relation: no relation named `R`");
        s.handle_line("USE a");
        assert_eq!(s.handle_line("COUNT q(x, y) :- R(x, y)").unwrap().terminal, "OK 1");
        // a dropped relation's name is immediately reusable at any arity
        s.handle_line("USE b");
        assert!(s.handle_line("INSERT R(7)").unwrap().is_ok());
        assert_eq!(s.handle_line("COUNT q(x) :- R(x)").unwrap().terminal, "OK 1");
    }

    #[test]
    fn drop_relation_invalidates_the_pinned_catalog() {
        let state = Arc::new(ServerState::new());
        let mut s = Session::new(Arc::clone(&state));
        s.handle_line("CREATE DB t");
        s.handle_line("USE t");
        s.handle_line("INSERT R(1, 2)");
        s.handle_line("COUNT q(x, y) :- R(x, y)"); // warm the pinned catalog
        let t = state.tenant("t").unwrap();
        assert!(t.read(|_, cat| cat.snapshot().misses) > 0);
        s.handle_line("DROP R");
        assert_eq!(t.read(|_, cat| cat.snapshot().misses), 0, "fresh after drop");
    }

    #[test]
    fn drop_db_isolates_tenants_and_flags_live_sessions() {
        let state = Arc::new(ServerState::new());
        let mut s1 = Session::new(Arc::clone(&state));
        let mut s2 = Session::new(Arc::clone(&state));
        s1.handle_line("CREATE DB a");
        s1.handle_line("CREATE DB b");
        s1.handle_line("USE a");
        s1.handle_line("INSERT R(1, 2)");
        s2.handle_line("USE a");
        // session 2 drops the database session 1 is using
        let r = s2.handle_line("DROP DB a").unwrap();
        assert_eq!(r.terminal, "OK dropped database a");
        // ...which also clears session 2's own selection
        let r = s2.handle_line("COUNT q(x, y) :- R(x, y)").unwrap();
        assert!(r.terminal.starts_with("ERR no-db:"), "{}", r.terminal);
        // session 1's next command gets a structured refusal, not data
        let r = s1.handle_line("COUNT q(x, y) :- R(x, y)").unwrap();
        assert_eq!(r.terminal, "ERR no-such-db: database `a` was dropped; USE another");
        // tenant b is untouched; a's name is reusable as a fresh db
        s1.handle_line("USE b");
        assert!(s1.handle_line("INSERT S(1)").unwrap().is_ok());
        assert!(s1.handle_line("CREATE DB a").unwrap().is_ok());
        s1.handle_line("USE a");
        let r = s1.handle_line("ANSWERS q(x, y) :- R(x, y)").unwrap();
        assert!(r.terminal.starts_with("ERR eval:"), "fresh tenant: {}", r.terminal);
        let r = s1.handle_line("DROP DB missing").unwrap();
        assert_eq!(r.terminal, "ERR no-such-db: no database named `missing`");
    }

    #[test]
    fn save_requires_a_persistent_server() {
        let mut s = session();
        s.handle_line("CREATE DB t");
        s.handle_line("USE t");
        let r = s.handle_line("SAVE").unwrap();
        assert!(r.terminal.starts_with("ERR storage:"), "{}", r.terminal);
        // and a tenant, before that
        let mut s = session();
        assert!(s.handle_line("SAVE").unwrap().terminal.starts_with("ERR no-db:"));
    }

    #[test]
    fn stats_detail_reports_schema_generation_and_storage() {
        let mut s = session();
        s.handle_line("CREATE DB t");
        s.handle_line("USE t");
        drive(&mut s, &["LOAD Edge 2", "1 2", "2 3", "END"]);
        s.handle_line("INSERT Name(7)");
        let r = s.handle_line("STATS t").unwrap();
        assert!(r.is_ok());
        assert!(
            r.data[0].starts_with("db t: 2 relations, 3 tuples, generation "),
            "{}",
            r.data[0]
        );
        assert_eq!(r.data[1], "rel Edge: arity 2, 2 rows");
        assert_eq!(r.data[2], "rel Name: arity 1, 1 rows");
        assert!(r.data[3].starts_with("catalog: "), "{}", r.data[3]);
        assert_eq!(r.data[4], "traffic: n/a (need 2 metric snapshots)");
        assert_eq!(r.data[5], "storage: none (in-memory)");
        // generation moves on mutation, holds on reads
        let before = r.data[0].clone();
        s.handle_line("COUNT q(x, y) :- Edge(x, y)");
        assert_eq!(s.handle_line("STATS t").unwrap().data[0], before);
        s.handle_line("INSERT Name(8)");
        assert_ne!(s.handle_line("STATS t").unwrap().data[0], before);
        let r = s.handle_line("STATS nope").unwrap();
        assert_eq!(r.terminal, "ERR no-such-db: no database named `nope`");
    }

    #[test]
    fn metrics_report_per_tenant_commands_and_errors() {
        let mut s = session();
        s.handle_line("PING");
        s.handle_line("USE nope"); // counted: errors.no-such-db
        s.handle_line("CREATE DB m");
        s.handle_line("USE m");
        s.handle_line("INSERT R(1, 2)");
        s.handle_line("COUNT q(x, y) :- R(x, y)");
        s.handle_line("COUNT q(x, y) :- R(x, y)");
        let r = s.handle_line("METRICS").unwrap();
        assert_eq!(r.terminal, "OK metrics");
        assert!(r.data.iter().any(|l| l == "db.m cmd.count.calls=2"), "{:?}", r.data);
        assert!(r.data.iter().any(|l| l == "db.m cmd.insert.calls=1"), "{:?}", r.data);
        assert!(
            r.data.iter().any(|l| l.starts_with("db.m cmd.count.latency n=2 p50=")),
            "{:?}",
            r.data
        );
        assert!(
            r.data.iter().any(|l| l.starts_with("db.m op.") && l.ends_with(".calls=2")),
            "per-op counters: {:?}",
            r.data
        );
        assert!(r.data.iter().any(|l| l == "server cmd.ping.calls=1"), "{:?}", r.data);
        assert!(r.data.iter().any(|l| l == "server errors.no-such-db=1"), "{:?}", r.data);
        assert!(r.data.iter().any(|l| l == "server plan-cache.uncacheable=0"));
        assert!(
            r.data.iter().any(|l| l.starts_with("db.m catalog.hits=")),
            "{:?}",
            r.data
        );
        // filtered to one tenant's scope
        let r = s.handle_line("METRICS m").unwrap();
        assert_eq!(r.terminal, "OK metrics for m");
        assert!(!r.data.is_empty());
        assert!(r.data.iter().all(|l| l.starts_with("db.m ")), "{:?}", r.data);
        let r = s.handle_line("METRICS nope").unwrap();
        assert!(r.terminal.starts_with("ERR no-such-db"), "{}", r.terminal);
        // a dropped tenant's scope is forgotten
        s.handle_line("DROP DB m");
        let r = s.handle_line("METRICS").unwrap();
        assert!(!r.data.iter().any(|l| l.starts_with("db.m ")), "{:?}", r.data);
    }

    #[test]
    fn budget_rejects_over_cost_queries_with_a_citation() {
        let mut s = session();
        s.handle_line("CREATE DB b");
        s.handle_line("USE b");
        drive(
            &mut s,
            &[
                "LOAD R1 2",
                "1 2",
                "END", //
                "LOAD R2 2",
                "2 3",
                "END", //
                "LOAD R3 2",
                "3 1",
                "END",
            ],
        );
        let tri = "DECIDE q() :- R1(x, y), R2(y, z), R3(z, x)";
        assert_eq!(s.handle_line(tri).unwrap().terminal, "OK true");
        s.handle_line("SET BUDGET b MAX-EXPONENT 1.2");
        let r = s.handle_line(tri).unwrap();
        assert!(r.terminal.starts_with("ERR budget:"), "{}", r.terminal);
        assert!(r.terminal.contains("MAX-EXPONENT 1.20"), "{}", r.terminal);
        assert!(r.terminal.contains("Triangle Hypothesis"), "{}", r.terminal);
        // under-budget queries still run
        assert_eq!(s.handle_line("DECIDE q() :- R1(x, y)").unwrap().terminal, "OK true");
        // the rejection is a metric
        let m = s.handle_line("METRICS b").unwrap();
        assert!(m.data.iter().any(|l| l == "db.b budget.rejections=1"), "{:?}", m.data);
        // clearing the budget re-admits the query
        s.handle_line("SET BUDGET b NONE");
        assert_eq!(s.handle_line(tri).unwrap().terminal, "OK true");
        // MAX-ROWS caps the estimated operation count
        s.handle_line("SET BUDGET b MAX-ROWS 1");
        let r = s.handle_line(tri).unwrap();
        assert!(r.terminal.starts_with("ERR budget:"), "{}", r.terminal);
        assert!(r.terminal.contains("MAX-ROWS 1"), "{}", r.terminal);
        // budget commands on unknown tenants are structured errors
        let r = s.handle_line("SET BUDGET nope MAX-ROWS 1").unwrap();
        assert!(r.terminal.starts_with("ERR no-such-db"), "{}", r.terminal);
    }

    #[test]
    fn batch_items_are_admission_checked_individually() {
        let mut s = session();
        s.handle_line("CREATE DB b");
        s.handle_line("USE b");
        drive(
            &mut s,
            &[
                "LOAD R1 2",
                "1 2",
                "END", //
                "LOAD R2 2",
                "2 3",
                "END", //
                "LOAD R3 2",
                "3 1",
                "END",
            ],
        );
        s.handle_line("SET BUDGET b MAX-EXPONENT 1.2");
        s.handle_line("BATCH");
        s.handle_line("DECIDE q() :- R1(x, y)");
        s.handle_line("DECIDE q() :- R1(x, y), R2(y, z), R3(z, x)");
        let r = s.handle_line("END").unwrap();
        assert!(r.is_ok());
        assert_eq!(r.data[0], "0 OK true");
        assert!(r.data[1].starts_with("1 ERR budget:"), "{}", r.data[1]);
        assert!(r.data[1].contains("Triangle Hypothesis"), "{}", r.data[1]);
    }

    #[test]
    fn slow_query_log_records_over_threshold_queries() {
        let mut s = session();
        s.state.metrics().slowlog().set_threshold(std::time::Duration::ZERO);
        s.handle_line("CREATE DB t");
        s.handle_line("USE t");
        s.handle_line("INSERT R(1, 2)");
        s.handle_line("COUNT q(x, y) :- R(x, y)");
        let entries = s.state.metrics().slowlog().recent();
        assert_eq!(entries.len(), 1, "one query over the (zero) threshold");
        assert_eq!(entries[0].db, "t");
        assert_eq!(entries[0].query, "q(x, y) :- R(x, y)");
        assert!(!entries[0].plan_op.is_empty());
        let line = entries[0].render();
        assert!(line.starts_with("slow-query db=t "), "{line}");
    }

    #[test]
    fn cursor_fetch_pages_through_the_answer_set() {
        let mut s = session();
        s.handle_line("CREATE DB t");
        s.handle_line("USE t");
        drive(
            &mut s,
            &[
                "LOAD R 2", "1 10", "2 10", "3 11", "END", "LOAD S 2", "10 7", "11 8",
                "END",
            ],
        );
        let full = s.handle_line("ANSWERS q(x, z) :- R(x, y), S(y, z)").unwrap();
        assert_eq!(full.terminal, "OK 3 rows");
        let r = s.handle_line("CURSOR ANSWERS q(x, z) :- R(x, y), S(y, z)").unwrap();
        assert_eq!(r.terminal, "OK cursor 0");
        assert!(r.data.is_empty(), "opening a cursor sends no rows");
        // paged FETCHes concatenate to exactly the one-shot ANSWERS
        let p1 = s.handle_line("FETCH 0 2").unwrap();
        assert_eq!(p1.terminal, "OK 2 rows");
        let p2 = s.handle_line("FETCH 0 100").unwrap();
        assert_eq!(p2.terminal, "OK 1 rows eof");
        let mut paged = p1.data.clone();
        paged.extend(p2.data.clone());
        assert_eq!(paged, full.data, "FETCH pages byte-match the streamed ANSWERS");
        // exhausted cursors keep answering eof until closed
        assert_eq!(s.handle_line("FETCH 0 5").unwrap().terminal, "OK 0 rows eof");
        let m = s.handle_line("METRICS t").unwrap();
        assert!(m.data.iter().any(|l| l == "db.t cursors.open=1"), "{:?}", m.data);
        assert!(
            m.data.iter().any(|l| l.starts_with("db.t answers.rows=")),
            "{:?}",
            m.data
        );
        assert!(
            m.data.iter().any(|l| l.starts_with("db.t answers.ttfr.latency ")),
            "time-to-first-row histogram: {:?}",
            m.data
        );
        assert_eq!(s.handle_line("CLOSE 0").unwrap().terminal, "OK closed cursor 0");
        let m = s.handle_line("METRICS t").unwrap();
        assert!(m.data.iter().any(|l| l == "db.t cursors.open=0"), "{:?}", m.data);
        // touching a closed (or never-opened) cursor is structured
        let r = s.handle_line("FETCH 0 1").unwrap();
        assert!(r.terminal.starts_with("ERR no-such-cursor"), "{}", r.terminal);
        let r = s.handle_line("CLOSE 0").unwrap();
        assert!(r.terminal.starts_with("ERR no-such-cursor"), "{}", r.terminal);
        let r = s.handle_line("SEEK 99 0").unwrap();
        assert!(r.terminal.starts_with("ERR no-such-cursor"), "{}", r.terminal);
    }

    #[test]
    fn seek_is_o1_on_access_cursors_and_refused_on_enumeration() {
        let mut s = session();
        s.handle_line("CREATE DB t");
        s.handle_line("USE t");
        drive(
            &mut s,
            &[
                "LOAD R1 2",
                "1 10",
                "2 10",
                "3 11",
                "END",
                "LOAD R2 2",
                "10 7",
                "11 8",
                "END",
            ],
        );
        // a direct-access cursor: SEEK jumps, the skipped prefix is
        // never enumerated (DirectAccessStream::seek moves a position
        // counter only — witnessed by the engine's accesses() test)
        let r = s.handle_line("CURSOR ACCESS q(x, y, z) :- R1(x, y), R2(y, z)").unwrap();
        assert_eq!(r.terminal, "OK cursor 0");
        let full = s.handle_line("FETCH 0 100").unwrap();
        assert_eq!(full.terminal, "OK 3 rows eof");
        assert_eq!(s.handle_line("SEEK 0 2").unwrap().terminal, "OK cursor 0 at 2");
        let r = s.handle_line("FETCH 0 10").unwrap();
        assert_eq!(r.data, vec![full.data[2].clone()], "SEEK lands on the k-th answer");
        // seek back to the start: cursors are rewindable
        s.handle_line("SEEK 0 0");
        assert_eq!(s.handle_line("FETCH 0 100").unwrap().data, full.data);
        // a constant-delay enumeration cursor has no random access:
        // SEEK is a structural refusal citing the plan operator
        let r = s.handle_line("CURSOR ANSWERS q(x, y, z) :- R1(x, y), R2(y, z)").unwrap();
        assert_eq!(r.terminal, "OK cursor 1");
        let r = s.handle_line("SEEK 1 2").unwrap();
        assert!(r.terminal.starts_with("ERR unsupported:"), "{}", r.terminal);
        assert!(r.terminal.contains("constant-delay enumeration"), "{}", r.terminal);
        // the cursor survives the refused SEEK
        assert_eq!(s.handle_line("FETCH 1 100").unwrap().terminal, "OK 3 rows eof");
    }

    #[test]
    fn mutations_invalidate_open_cursors() {
        let state = Arc::new(ServerState::new());
        let mut s = Session::new(Arc::clone(&state));
        s.handle_line("CREATE DB t");
        s.handle_line("USE t");
        drive(&mut s, &["LOAD R 2", "1 2", "3 4", "END"]);
        s.handle_line("CURSOR ANSWERS q(x, y) :- R(x, y)");
        // reads don't invalidate
        s.handle_line("COUNT q(x, y) :- R(x, y)");
        assert!(s.handle_line("FETCH 0 1").unwrap().is_ok());
        // a mutation bumps the generation: the pinned snapshot is gone
        s.handle_line("INSERT R(9, 9)");
        let r = s.handle_line("FETCH 0 1").unwrap();
        assert!(r.terminal.starts_with("ERR stale-cursor:"), "{}", r.terminal);
        assert!(r.terminal.contains("re-open"), "{}", r.terminal);
        // the stale cursor was evicted, and the metrics say so
        let r = s.handle_line("FETCH 0 1").unwrap();
        assert!(r.terminal.starts_with("ERR no-such-cursor"), "{}", r.terminal);
        let m = s.handle_line("METRICS t").unwrap();
        assert!(m.data.iter().any(|l| l == "db.t cursors.stale=1"), "{:?}", m.data);
        assert!(m.data.iter().any(|l| l == "db.t cursors.open=0"), "{:?}", m.data);
        // SEEK on a stale cursor is the same structured eviction
        s.handle_line("CURSOR ANSWERS q(x, y) :- R(x, y)");
        s.handle_line("INSERT R(8, 8)");
        let r = s.handle_line("SEEK 1 0").unwrap();
        assert!(r.terminal.starts_with("ERR stale-cursor:"), "{}", r.terminal);
        // dropping the tenant invalidates too
        s.handle_line("CURSOR ANSWERS q(x, y) :- R(x, y)");
        s.handle_line("DROP DB t");
        let r = s.handle_line("FETCH 2 1").unwrap();
        assert!(r.terminal.starts_with("ERR stale-cursor:"), "{}", r.terminal);
    }

    #[test]
    fn cursor_limit_is_enforced_per_session() {
        let mut s = session();
        s.handle_line("CREATE DB t");
        s.handle_line("USE t");
        s.handle_line("INSERT R(1, 2)");
        for _ in 0..MAX_CURSORS_PER_SESSION {
            assert!(s.handle_line("CURSOR ANSWERS q(x, y) :- R(x, y)").unwrap().is_ok());
        }
        let r = s.handle_line("CURSOR ANSWERS q(x, y) :- R(x, y)").unwrap();
        assert!(r.terminal.starts_with("ERR cursor-limit:"), "{}", r.terminal);
        // closing one frees a slot
        assert!(s.handle_line("CLOSE 0").unwrap().is_ok());
        assert!(s.handle_line("CURSOR ANSWERS q(x, y) :- R(x, y)").unwrap().is_ok());
    }

    #[test]
    fn open_cursors_do_not_pin_the_tenant_read_lock() {
        // an idle cursor holds only Arc'd artifacts: writers must be
        // able to mutate (and thereby invalidate) while it sits open —
        // if the cursor held the read lock this would deadlock
        let state = Arc::new(ServerState::new());
        let mut s = Session::new(Arc::clone(&state));
        s.handle_line("CREATE DB t");
        s.handle_line("USE t");
        drive(&mut s, &["LOAD R 2", "1 2", "3 4", "END"]);
        s.handle_line("CURSOR ANSWERS q(x, y) :- R(x, y)");
        assert!(s.handle_line("FETCH 0 1").unwrap().is_ok(), "cursor mid-stream");
        let done = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|scope| {
            scope.spawn(|| {
                let t = state.tenant("t").unwrap();
                let ((), wal) = t.mutate_wal(|db| {
                    let rel = db.get_mut("R").expect("loaded above");
                    rel.insert_row(&[7, 7]);
                    ((), None)
                });
                wal.expect("no WAL in memory mode");
                done.store(true, Ordering::SeqCst);
            });
        });
        assert!(done.load(Ordering::SeqCst), "writer finished with a cursor open");
    }

    /// A writer that records the largest single `write` it ever saw —
    /// the observable ceiling on per-connection answer buffering.
    struct ChunkMeter {
        bytes: Vec<u8>,
        max_write: usize,
        writes: usize,
    }

    impl Write for ChunkMeter {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.max_write = self.max_write.max(buf.len());
            self.writes += 1;
            self.bytes.extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn streaming_buffers_at_most_one_chunk_for_huge_results() {
        // 400 x 400 free-connex join: 160_000 answers from 800 input
        // rows — the paper's point that answers can dwarf the data
        let mut s = session();
        s.handle_line("CREATE DB big");
        s.handle_line("USE big");
        s.handle_line("LOAD R 2");
        for i in 0..400u64 {
            s.handle_line(&format!("{i} 0"));
        }
        s.handle_line("END");
        s.handle_line("LOAD S 2");
        for j in 0..400u64 {
            s.handle_line(&format!("0 {j}"));
        }
        s.handle_line("END");
        let action = s.handle_action(b"ANSWERS q(x, z) :- R(x, y), S(y, z)").unwrap();
        let Action::Stream(flow) = action else {
            panic!("a successful ANSWERS must stream, not materialize a reply");
        };
        let mut meter = ChunkMeter { bytes: Vec::new(), max_write: 0, writes: 0 };
        s.drain_flow(*flow, &mut meter).unwrap();
        let text = String::from_utf8(meter.bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        let (rows, terminal) = lines.split_at(lines.len() - 1);
        assert_eq!(rows.len(), 160_000, "every answer reaches the wire");
        assert!(rows.iter().all(|l| l.starts_with(DATA_PREFIX)));
        assert_eq!(terminal, ["OK 160000 rows"]);
        // peak per-connection buffering is one chunk, not the result:
        // a row here is ≤ 10 wire bytes, so a chunk stays under 16 KiB
        // while the full result is > 1 MiB
        assert!(
            meter.max_write <= STREAM_CHUNK_ROWS * 64,
            "largest single write was {} bytes",
            meter.max_write
        );
        assert!(
            meter.writes >= 160_000 / STREAM_CHUNK_ROWS,
            "the result must go out chunk by chunk, got {} writes",
            meter.writes
        );
    }

    #[test]
    fn quit_finishes_the_session() {
        let mut s = session();
        let r = s.handle_line("QUIT").unwrap();
        assert_eq!(r.terminal, "OK bye");
        assert!(s.finished());
    }

    #[test]
    fn tenants_are_isolated() {
        let mut s = session();
        s.handle_line("CREATE DB a");
        s.handle_line("CREATE DB b");
        s.handle_line("USE a");
        s.handle_line("INSERT R(1, 2)");
        s.handle_line("USE b");
        s.handle_line("INSERT R(5, 6)");
        let r = s.handle_line("ANSWERS q(x, y) :- R(x, y)").unwrap();
        assert_eq!(r.data, vec!["5 6"]);
        s.handle_line("USE a");
        let r = s.handle_line("ANSWERS q(x, y) :- R(x, y)").unwrap();
        assert_eq!(r.data, vec!["1 2"]);
    }

    fn load_triangle(s: &mut Session, db: &str) {
        s.handle_line(&format!("CREATE DB {db}"));
        s.handle_line(&format!("USE {db}"));
        drive(
            s,
            &[
                "LOAD R1 2",
                "1 2",
                "END", //
                "LOAD R2 2",
                "2 3",
                "END", //
                "LOAD R3 2",
                "3 1",
                "END",
            ],
        );
    }

    #[test]
    fn timeout_trips_err_timeout_with_citation() {
        let mut s = session();
        load_triangle(&mut s, "b");
        let tri = "DECIDE q() :- R1(x, y), R2(y, z), R3(z, x)";
        assert_eq!(s.handle_line(tri).unwrap().terminal, "OK true");
        // a zero deadline is already past when evaluation starts: the
        // very first cooperative check trips, deterministically
        assert!(s.handle_line("SET TIMEOUT b 0").unwrap().is_ok());
        let r = s.handle_line(tri).unwrap();
        assert!(r.terminal.starts_with("ERR timeout:"), "{}", r.terminal);
        assert!(r.terminal.contains("0 ms deadline"), "{}", r.terminal);
        assert!(r.terminal.contains("plan cost m^"), "{}", r.terminal);
        assert!(r.terminal.contains("Hypothesis"), "{}", r.terminal);
        // the session (and the tenant) keep serving
        assert_eq!(s.handle_line("PING").unwrap().terminal, "OK pong");
        let m = s.handle_line("METRICS b").unwrap();
        assert!(m.data.iter().any(|l| l == "db.b timeouts=1"), "{:?}", m.data);
        // clearing the timeout re-admits the query
        assert!(s.handle_line("SET TIMEOUT b NONE").unwrap().is_ok());
        assert_eq!(s.handle_line(tri).unwrap().terminal, "OK true");
        // other tenants are untouched by b's deadline
        load_triangle(&mut s, "c");
        s.handle_line("SET TIMEOUT b 0");
        s.handle_line("USE c");
        assert_eq!(s.handle_line(tri).unwrap().terminal, "OK true");
        // unknown tenants are structured errors
        let r = s.handle_line("SET TIMEOUT nope 5").unwrap();
        assert!(r.terminal.starts_with("ERR no-such-db"), "{}", r.terminal);
    }

    #[test]
    fn timeout_applies_to_batch_items() {
        let mut s = session();
        load_triangle(&mut s, "b");
        s.handle_line("SET TIMEOUT b 0");
        s.handle_line("BATCH");
        s.handle_line("DECIDE q() :- R1(x, y), R2(y, z), R3(z, x)");
        let r = s.handle_line("END").unwrap();
        assert!(r.is_ok());
        assert!(r.data[0].starts_with("0 ERR timeout:"), "{}", r.data[0]);
        assert!(r.data[0].contains("SET TIMEOUT deadline"), "{}", r.data[0]);
    }

    #[test]
    fn disconnect_probe_cancels_evaluation() {
        let mut s = session();
        s.set_cancel_probe(|| true); // the "client" is always gone
        load_triangle(&mut s, "b");
        let r = s.handle_line("DECIDE q() :- R1(x, y), R2(y, z), R3(z, x)").unwrap();
        assert!(r.terminal.starts_with("ERR timeout:"), "{}", r.terminal);
        assert!(r.terminal.contains("client disconnected"), "{}", r.terminal);
        let m = s.handle_line("METRICS b").unwrap();
        assert!(m.data.iter().any(|l| l == "db.b cancellations=1"), "{:?}", m.data);
    }

    #[test]
    fn wal_failure_degrades_tenant_to_read_only_until_resume() {
        use cq_storage::{FaultPlan, FaultPoint, Store};
        let dir = std::env::temp_dir()
            .join(format!("cq_server_degrade_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = Store::open_dir_with_faults(
            &dir,
            FaultPlan::failing(FaultPoint::WalAppend, 2),
        )
        .unwrap();
        let (state, _) = ServerState::recover(store).unwrap();
        let mut s = Session::new(Arc::new(state));
        s.handle_line("CREATE DB d");
        s.handle_line("USE d");
        assert!(s.handle_line("INSERT R(1, 2)").unwrap().is_ok());
        // the second append is the injected failure: the mutation is in
        // memory but not in the log — the tenant flips to read-only
        let r = s.handle_line("INSERT R(2, 3)").unwrap();
        assert!(r.terminal.starts_with("ERR storage:"), "{}", r.terminal);
        assert!(r.terminal.contains("now read-only"), "{}", r.terminal);
        // further mutations fail fast, with the RESUME hint
        let r = s.handle_line("INSERT R(3, 4)").unwrap();
        assert!(r.terminal.starts_with("ERR degraded:"), "{}", r.terminal);
        assert!(r.terminal.contains("RESUME d"), "{}", r.terminal);
        let r = s.handle_line("SET BUDGET d MAX-ROWS 1").unwrap();
        assert!(r.terminal.starts_with("ERR degraded:"), "{}", r.terminal);
        let r = s.handle_line("SAVE").unwrap();
        assert!(r.terminal.starts_with("ERR degraded:"), "{}", r.terminal);
        // reads keep serving everything that is in memory
        let r = s.handle_line("COUNT q(x, y) :- R(x, y)").unwrap();
        assert_eq!(r.terminal, "OK 2");
        // the state is observable
        let st = s.handle_line("STATS d").unwrap();
        assert!(st.data.iter().any(|l| l.contains("mode: read-only")), "{:?}", st.data);
        let m = s.handle_line("METRICS d").unwrap();
        assert!(m.data.iter().any(|l| l == "db.d degraded=1"), "{:?}", m.data);
        // RESUME checkpoints (capturing the in-memory truth, including
        // the unlogged insert) and restores read-write
        let r = s.handle_line("RESUME d").unwrap();
        assert!(r.is_ok(), "{}", r.terminal);
        assert!(r.terminal.contains("read-write restored"), "{}", r.terminal);
        assert!(s.handle_line("INSERT R(3, 4)").unwrap().is_ok());
        let st = s.handle_line("STATS d").unwrap();
        assert!(!st.data.iter().any(|l| l.contains("read-only")), "{:?}", st.data);
        // a reboot from disk sees everything the checkpoint captured
        drop(s);
        let store = Store::open_dir(&dir).unwrap();
        let (state, _) = ServerState::recover(store).unwrap();
        let mut s = Session::new(Arc::new(state));
        s.handle_line("USE d");
        let r = s.handle_line("COUNT q(x, y) :- R(x, y)").unwrap();
        assert_eq!(r.terminal, "OK 3");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_is_total_on_in_memory_servers() {
        let mut s = session();
        s.handle_line("CREATE DB t");
        let r = s.handle_line("RESUME t").unwrap();
        assert!(r.is_ok(), "{}", r.terminal);
        assert!(r.terminal.contains("in-memory"), "{}", r.terminal);
        let r = s.handle_line("RESUME nope").unwrap();
        assert!(r.terminal.starts_with("ERR no-such-db"), "{}", r.terminal);
    }

    /// Load the triangle and warm the catalog with one COUNT.
    fn warm_triangle(s: &mut Session) {
        drive(
            s,
            &[
                "CREATE DB t",
                "USE t",
                "INSERT R(1, 2)",
                "INSERT R(2, 3)",
                "INSERT S(2, 3)",
                "INSERT S(3, 1)",
                "INSERT T(3, 1)",
                "INSERT T(1, 2)",
                "COUNT q(x, y, z) :- R(x, y), S(y, z), T(z, x)",
            ],
        );
    }

    #[test]
    fn explain_analyze_reports_measured_time_rows_and_spans() {
        let mut s = session();
        warm_triangle(&mut s);
        let r = s
            .handle_line("EXPLAIN ANALYZE COUNT q(x, y, z) :- R(x, y), S(y, z), T(z, x)")
            .unwrap();
        assert_eq!(r.terminal, "OK analyzed", "{}", r.terminal);
        // the plan rendering comes first, then the measured section
        let analyze = r
            .data
            .iter()
            .position(|l| l.starts_with("analyze: total time="))
            .unwrap_or_else(|| panic!("no analyze line in {:?}", r.data));
        assert!(
            r.data[analyze].ends_with("rows=2"),
            "the loaded triangle has two homomorphisms: {}",
            r.data[analyze]
        );
        assert!(
            r.data[analyze + 1].starts_with("analyze: predicted m^"),
            "{}",
            r.data[analyze + 1]
        );
        assert!(
            r.data[analyze + 1].ends_with("observed 2 rows"),
            "{}",
            r.data[analyze + 1]
        );
        // per-operator spans: an execute root with catalog attrs and a
        // measured operator span with its row count
        let spans = &r.data[analyze + 2..];
        assert!(
            spans.iter().any(|l| l.trim_start().starts_with("execute time=")),
            "{spans:?}"
        );
        assert!(
            spans.iter().any(|l| {
                let t = l.trim_start();
                t.starts_with("op.") && t.contains(" time=") && t.contains("rows=2")
            }),
            "{spans:?}"
        );
        // ANSWERS drains server-side and reports the drained count
        let r = s.handle_line("EXPLAIN ANALYZE ANSWERS q(x, y) :- R(x, y)").unwrap();
        assert!(r.is_ok(), "{}", r.terminal);
        assert!(
            r.data.iter().any(|l| l.starts_with("analyze: ") && l.ends_with("rows=2")),
            "{:?}",
            r.data
        );
        assert!(
            r.data.iter().any(|l| l.trim_start().starts_with("stream.")),
            "the drained stream records its span: {:?}",
            r.data
        );
    }

    #[test]
    fn metrics_rate_needs_two_snapshots_then_reports_qps() {
        let mut s = session();
        warm_triangle(&mut s);
        let r = s.handle_line("METRICS RATE t").unwrap();
        assert_eq!(r.data, vec!["rate: n/a (need 2 metric snapshots)"]);
        s.handle_line("COUNT q(x, y) :- R(x, y)");
        s.handle_line("COUNT q(x, y) :- R(x, y)");
        // widen the window past formatting precision before snapshot 2
        std::thread::sleep(Duration::from_millis(20));
        let r = s.handle_line("METRICS RATE t").unwrap();
        assert!(r.is_ok(), "{}", r.terminal);
        assert!(r.data[0].starts_with("window="), "{:?}", r.data);
        assert!(r.data[0].contains("snapshots=2"), "{:?}", r.data);
        // independently recompute the COUNT qps: two calls since the
        // baseline snapshot over the reported window
        let count_line = r
            .data
            .iter()
            .find(|l| l.contains("cmd.count.calls"))
            .unwrap_or_else(|| panic!("no count rate in {:?}", r.data));
        let rate: f64 = count_line
            .rsplit("rate=")
            .next()
            .and_then(|t| t.strip_suffix("/s"))
            .and_then(|t| t.parse().ok())
            .unwrap_or_else(|| panic!("unparsable rate line {count_line}"));
        let window: f64 = r.data[0]
            .strip_prefix("window=")
            .and_then(|t| t.split('s').next())
            .and_then(|t| t.parse().ok())
            .unwrap();
        assert!(rate > 0.0, "qps must be nonzero: {count_line}");
        let expected = 2.0 / window;
        assert!(
            (rate - expected).abs() / expected < 0.05,
            "rate {rate} should recompute as 2/{window}s = {expected}"
        );
        // a bounded window: far wider than the test's runtime, so the
        // same baseline applies and a report still comes back
        let r = s.handle_line("METRICS RATE t 3600").unwrap();
        assert!(r.is_ok() && r.data[0].starts_with("window="), "{:?}", r.data);
        // unknown tenants are refused
        let r = s.handle_line("METRICS RATE nope").unwrap();
        assert!(r.terminal.starts_with("ERR no-such-db"), "{}", r.terminal);
    }

    #[test]
    fn profile_gates_on_tracing_and_retains_traces() {
        let mut s = session();
        warm_triangle(&mut s);
        let r = s.handle_line("PROFILE t").unwrap();
        assert!(r.terminal.starts_with("ERR tracing-off:"), "{}", r.terminal);
        // enable tracing (as `cqd --profile 2` would) and run queries
        s.state.metrics().set_profile_capacity(2);
        s.handle_line("COUNT q(x, y) :- R(x, y)");
        s.handle_line("ANSWERS q(x, y) :- R(x, y)");
        s.handle_line("DECIDE q() :- R(x, y)");
        let r = s.handle_line("PROFILE t").unwrap();
        assert_eq!(r.terminal, "OK 2 traces", "capacity evicts oldest");
        let headers: Vec<&String> =
            r.data.iter().filter(|l| l.starts_with("trace db=t ")).collect();
        assert_eq!(headers.len(), 2, "{:?}", r.data);
        assert!(
            headers[0].contains("query=\"q(x, y) :- R(x, y)\""),
            "oldest retained is the ANSWERS flow (labelled by its query text): {}",
            headers[0]
        );
        assert!(headers[1].contains("query=\"DECIDE q() :- R(x, y)\""), "{}", headers[1]);
        // span lines carry depth, name, elapsed, and recorded attrs
        assert!(
            r.data.iter().any(|l| l.starts_with("span depth=0 name=execute ns=")),
            "{:?}",
            r.data
        );
        assert!(
            r.data.iter().any(|l| l.starts_with("span ") && l.contains("name=stream.")),
            "the ANSWERS drain records its stream span: {:?}",
            r.data
        );
        // tracing off again clears retained traces
        s.state.metrics().set_profile_capacity(0);
        let r = s.handle_line("PROFILE t").unwrap();
        assert!(r.terminal.starts_with("ERR tracing-off:"), "{}", r.terminal);
    }

    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The rows attribute a trace records for the answer stream is
        /// exactly the number of rows the client received, and the
        /// execute span's rows attribute is exactly the COUNT result —
        /// measured output never drifts from delivered output.
        #[test]
        fn trace_row_counts_match_emitted_rows(
            pairs in proptest::collection::vec((1u64..=6, 1u64..=6), 1..24),
        ) {
            let mut s = session();
            s.handle_line("CREATE DB t");
            s.handle_line("USE t");
            s.state.metrics().set_profile_capacity(4);
            for (a, b) in &pairs {
                s.handle_line(&format!("INSERT Edge({a}, {b})"));
            }
            let r = s.handle_line("ANSWERS q(x, y) :- Edge(x, y)").unwrap();
            prop_assert!(r.is_ok(), "{}", r.terminal);
            let emitted = r.data.len() as u64;
            let traces = s.state.metrics().recent_traces("t");
            let tr = traces.last().expect("the ANSWERS query was traced");
            let mut stream_rows = None;
            tr.visit(|_, sp| {
                if sp.name.starts_with("stream.") {
                    stream_rows = sp.attr("rows");
                }
            });
            prop_assert_eq!(
                stream_rows,
                Some(emitted),
                "trace says {:?}, wire delivered {}", stream_rows, emitted
            );
            let r = s.handle_line("COUNT q(x, y) :- Edge(x, y)").unwrap();
            let counted: u64 =
                r.terminal.strip_prefix("OK ").unwrap().parse().unwrap();
            prop_assert_eq!(counted, emitted, "COUNT agrees with the drain");
            let traces = s.state.metrics().recent_traces("t");
            let tr = traces.last().expect("the COUNT query was traced");
            let mut exec_rows = None;
            tr.visit(|_, sp| {
                if sp.name == "execute" {
                    exec_rows = sp.attr("rows");
                }
            });
            prop_assert_eq!(exec_rows, Some(counted));
        }
    }
}
