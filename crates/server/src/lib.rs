//! # cq-server — the multi-tenant wire front end
//!
//! Serving is where the paper's dichotomies pay off operationally: many
//! clients issuing repeated-shape queries against warm per-database
//! state. This crate puts the whole pipeline — `cq_core::parser` →
//! `cq-planner` (the process-wide plan cache) → `cq-engine` over a
//! pinned per-tenant [`IndexCatalog`](cq_data::IndexCatalog) — behind a
//! line-based text protocol on a plain [`std::net::TcpListener`] and a
//! `std::thread` worker pool. No async runtime, no dependencies.
//!
//! * [`protocol`] — the request grammar and framed replies (`* ` data
//!   lines, one `OK`/`ERR` terminal per command; errors are structured,
//!   never connection-fatal).
//! * [`state`] — tenancy: one [`Database`](cq_data::Database) plus one
//!   pinned catalog per named tenant, under per-tenant read/write
//!   locks; optionally durable through `cq-storage` (each tenant then
//!   also carries its open write-ahead log, and
//!   [`ServerState::recover`](state::ServerState::recover) reloads
//!   every tenant on boot).
//! * [`server`] — the per-connection [`Session`] interpreter and the
//!   [`Server`] accept-loop/pool runtime with graceful shutdown.
//! * [`metrics`] — engine-wide observability: the `cq-obs` registry
//!   (per-tenant and server scopes), the slow-query log, and the
//!   `METRICS` rendering pipeline that also pulls catalog, WAL, and
//!   plan-cache counters into gauges.
//! * [`client`] — a blocking [`Client`] used by `cqsh` and the
//!   end-to-end tests.
//!
//! Lifecycle commands: `DROP <rel>` and `DROP DB <name>` delete a
//! relation / a tenant (in-memory and persistent modes alike), `SAVE`
//! checkpoints the current tenant into a snapshot (persistent mode),
//! and `STATS <name>` reports a tenant's schema, generation, and
//! storage status.
//!
//! Robustness commands: `SET TIMEOUT <db> <ms>|NONE` sets a per-tenant
//! query deadline enforced *cooperatively* inside the engine's inner
//! loops (a tripped deadline is a structured `ERR timeout` citing the
//! plan's cost exponent and the lower-bound hypothesis that makes the
//! cost unavoidable — the connection keeps serving), and `RESUME <db>`
//! repairs a tenant that degraded to read-only after an unrecoverable
//! write-ahead-log failure (reads keep serving throughout; see
//! `DESIGN.md`'s failure model). Both limits are logged, so they
//! survive a restart.
//!
//! ## Quickstart
//!
//! Boot a server and drive it in-process (the binaries `cqd` and `cqsh`
//! wrap exactly this):
//!
//! ```
//! use cq_server::{client::Client, server::Server};
//!
//! let server = Server::bind("127.0.0.1:0", 2).unwrap();
//! let mut c = Client::connect(server.local_addr()).unwrap();
//! c.create_db("demo").unwrap();
//! c.use_db("demo").unwrap();
//! c.load("R", 2, ["1 10", "2 10"]).unwrap();
//! c.load("S", 2, ["10 7"]).unwrap();
//! let r = c.request("COUNT q(x, z) :- R(x, y), S(y, z)").unwrap();
//! assert_eq!(r.terminal, "OK 2");
//! let r = c.request("ANSWERS q(x, z) :- R(x, y), S(y, z)").unwrap();
//! assert_eq!(r.data, vec!["1 7", "2 7"]);
//!
//! // a per-tenant deadline: a zero timeout is already past when
//! // evaluation starts, so the trip is deterministic — and structured
//! c.set_timeout("demo", Some(0)).unwrap();
//! let r = c.request("COUNT q(x, z) :- R(x, y), S(y, z)").unwrap();
//! assert_eq!(r.err_kind(), Some(cq_server::ErrKind::Timeout));
//! assert!(r.terminal.contains("plan cost m^"));
//! c.set_timeout("demo", None).unwrap();
//! let r = c.request("COUNT q(x, z) :- R(x, y), S(y, z)").unwrap();
//! assert_eq!(r.terminal, "OK 2");
//! c.quit().unwrap();
//! server.shutdown();
//! ```
//!
//! ## Primary + replica
//!
//! A durable server can be followed by any number of read-only
//! replicas: each replica pulls epoch-stamped snapshots and WAL
//! segments over the `SHIP` verb and serves `ANSWERS` against warm
//! local catalogs, while mutations answer `ERR read-only` naming the
//! primary (`cqd --replica-of <addr>` wraps exactly this):
//!
//! ```
//! use cq_server::{client::Client, server::Server, state::ServerState};
//! use std::sync::Arc;
//! use std::time::Duration;
//!
//! // a durable primary over a scratch directory
//! let dir = std::env::temp_dir().join(format!("cq_quickstart_{}", std::process::id()));
//! let store = cq_storage::Store::open_dir(&dir).unwrap();
//! let (state, _report) = ServerState::recover(store).unwrap();
//! let primary = Server::bind_with_state("127.0.0.1:0", 2, Arc::new(state)).unwrap();
//! let mut p = Client::connect(primary.local_addr()).unwrap();
//! p.create_db("demo").unwrap();
//! p.use_db("demo").unwrap();
//! p.load("R", 2, ["1 10", "2 10"]).unwrap();
//!
//! // an in-memory replica pulling from the primary
//! let replica_state = Arc::new(ServerState::new());
//! let puller = cq_server::replica::start(
//!     Arc::clone(&replica_state),
//!     primary.local_addr().to_string(),
//!     Duration::from_millis(20),
//! );
//! let replica = Server::bind_with_state("127.0.0.1:0", 2, replica_state).unwrap();
//! let mut r = Client::connect(replica.local_addr()).unwrap();
//!
//! // wait for catch-up, then reads serve and writes refuse
//! let deadline = std::time::Instant::now() + Duration::from_secs(10);
//! let q = "ANSWERS q(x, y) :- R(x, y)";
//! let want = p.request(q).unwrap().data;
//! loop {
//!     if r.use_db("demo").unwrap().is_ok() {
//!         let got = r.request(q).unwrap();
//!         if got.is_ok() && got.data == want {
//!             break; // byte-identical answers
//!         }
//!     }
//!     assert!(std::time::Instant::now() < deadline, "replica never caught up");
//!     std::thread::sleep(Duration::from_millis(20));
//! }
//! let refused = r.request("INSERT R(9, 9)").unwrap();
//! assert_eq!(refused.err_kind(), Some(cq_server::ErrKind::ReadOnly));
//!
//! puller.stop();
//! replica.shutdown();
//! primary.shutdown();
//! std::fs::remove_dir_all(&dir).unwrap();
//! ```
//!
//! Over the wire, the same session is a plain text conversation — see
//! the [`protocol`] docs for the grammar and `DESIGN.md` for the
//! threading and tenancy model.

pub mod client;
pub mod metrics;
pub mod protocol;
pub mod replica;
pub mod server;
pub mod state;

pub use client::Client;
pub use metrics::{ServerMetrics, SessionMetrics};
pub use protocol::{Command, ErrKind, Reply};
pub use replica::ReplicaHandle;
pub use server::{Server, Session};
pub use state::{Budget, ServerState, Tenant};
