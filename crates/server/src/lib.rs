//! # cq-server — the multi-tenant wire front end
//!
//! Serving is where the paper's dichotomies pay off operationally: many
//! clients issuing repeated-shape queries against warm per-database
//! state. This crate puts the whole pipeline — `cq_core::parser` →
//! `cq-planner` (the process-wide plan cache) → `cq-engine` over a
//! pinned per-tenant [`IndexCatalog`](cq_data::IndexCatalog) — behind a
//! line-based text protocol on a plain [`std::net::TcpListener`] and a
//! `std::thread` worker pool. No async runtime, no dependencies.
//!
//! * [`protocol`] — the request grammar and framed replies (`* ` data
//!   lines, one `OK`/`ERR` terminal per command; errors are structured,
//!   never connection-fatal).
//! * [`state`] — tenancy: one [`Database`](cq_data::Database) plus one
//!   pinned catalog per named tenant, under per-tenant read/write
//!   locks; optionally durable through `cq-storage` (each tenant then
//!   also carries its open write-ahead log, and
//!   [`ServerState::recover`](state::ServerState::recover) reloads
//!   every tenant on boot).
//! * [`server`] — the per-connection [`Session`] interpreter and the
//!   [`Server`] accept-loop/pool runtime with graceful shutdown.
//! * [`metrics`] — engine-wide observability: the `cq-obs` registry
//!   (per-tenant and server scopes), the slow-query log, and the
//!   `METRICS` rendering pipeline that also pulls catalog, WAL, and
//!   plan-cache counters into gauges.
//! * [`client`] — a blocking [`Client`] used by `cqsh` and the
//!   end-to-end tests.
//!
//! Lifecycle commands: `DROP <rel>` and `DROP DB <name>` delete a
//! relation / a tenant (in-memory and persistent modes alike), `SAVE`
//! checkpoints the current tenant into a snapshot (persistent mode),
//! and `STATS <name>` reports a tenant's schema, generation, and
//! storage status.
//!
//! Robustness commands: `SET TIMEOUT <db> <ms>|NONE` sets a per-tenant
//! query deadline enforced *cooperatively* inside the engine's inner
//! loops (a tripped deadline is a structured `ERR timeout` citing the
//! plan's cost exponent and the lower-bound hypothesis that makes the
//! cost unavoidable — the connection keeps serving), and `RESUME <db>`
//! repairs a tenant that degraded to read-only after an unrecoverable
//! write-ahead-log failure (reads keep serving throughout; see
//! `DESIGN.md`'s failure model). Both limits are logged, so they
//! survive a restart.
//!
//! ## Quickstart
//!
//! Boot a server and drive it in-process (the binaries `cqd` and `cqsh`
//! wrap exactly this):
//!
//! ```
//! use cq_server::{client::Client, server::Server};
//!
//! let server = Server::bind("127.0.0.1:0", 2).unwrap();
//! let mut c = Client::connect(server.local_addr()).unwrap();
//! c.request("CREATE DB demo").unwrap();
//! c.request("USE demo").unwrap();
//! c.load("R", 2, ["1 10", "2 10"]).unwrap();
//! c.load("S", 2, ["10 7"]).unwrap();
//! let r = c.request("COUNT q(x, z) :- R(x, y), S(y, z)").unwrap();
//! assert_eq!(r.terminal, "OK 2");
//! let r = c.request("ANSWERS q(x, z) :- R(x, y), S(y, z)").unwrap();
//! assert_eq!(r.data, vec!["1 7", "2 7"]);
//!
//! // a per-tenant deadline: a zero timeout is already past when
//! // evaluation starts, so the trip is deterministic — and structured
//! c.request("SET TIMEOUT demo 0").unwrap();
//! let r = c.request("COUNT q(x, z) :- R(x, y), S(y, z)").unwrap();
//! assert!(r.terminal.starts_with("ERR timeout:"));
//! assert!(r.terminal.contains("plan cost m^"));
//! c.request("SET TIMEOUT demo NONE").unwrap();
//! let r = c.request("COUNT q(x, z) :- R(x, y), S(y, z)").unwrap();
//! assert_eq!(r.terminal, "OK 2");
//! c.quit().unwrap();
//! server.shutdown();
//! ```
//!
//! Over the wire, the same session is a plain text conversation — see
//! the [`protocol`] docs for the grammar and `DESIGN.md` for the
//! threading and tenancy model.

pub mod client;
pub mod metrics;
pub mod protocol;
pub mod server;
pub mod state;

pub use client::Client;
pub use metrics::{ServerMetrics, SessionMetrics};
pub use protocol::{Command, ErrKind, Reply};
pub use server::{Server, Session};
pub use state::{Budget, ServerState, Tenant};
