//! Multi-tenant server state: named databases with pinned catalogs,
//! optionally backed by durable storage.
//!
//! Tenancy model: one [`Database`] plus one [`IndexCatalog`] per named
//! tenant. The catalog is *pinned* to the tenant (not looked up through
//! the facade's generation-keyed registry), so a tenant's working set
//! of sorted views, hash indexes, and preprocessing artifacts can never
//! be evicted by traffic on other tenants. Catalogs self-invalidate by
//! [`Database::generation`], and every mutation additionally re-pins a
//! fresh catalog so memory for the old state is dropped eagerly.
//!
//! Persistence: a registry opened over a [`Store`]
//! ([`ServerState::recover`]) reloads every tenant on boot (snapshot +
//! WAL replay) and each tenant carries its open [`WalWriter`] inside
//! the same slot as its database, so a mutation and its WAL append
//! commute with nothing — both happen under the tenant's write lock,
//! in order. Catalogs and plan caches are *not* persisted; they are
//! memos over the data and rebuild warm on demand after recovery.
//!
//! Locking: the tenant map is under one [`RwLock`] (resolved per
//! command, never held across evaluation); each tenant holds its
//! database, catalog, and WAL under a second [`RwLock`] so any number
//! of sessions evaluate concurrently against one tenant while
//! mutations (`INSERT`, `LOAD`, `DROP`) get exclusive access. All lock
//! acquisitions are poison-tolerant: a panicked handler cannot take a
//! tenant down. A dropped tenant (`DROP DB`) is removed from the map
//! and flagged, so sessions still holding it get a structured error
//! instead of mutating a ghost.

use crate::metrics::ServerMetrics;
use cq_data::{CatalogStats, Database, IndexCatalog};
use cq_storage::{
    GroupGate, Store, StoreError, TenantLimits, WalRecord, WalStats, WalWriter,
};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::time::Duration;

/// Why a tenant operation was refused.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum StateError {
    /// `CREATE DB` of a name that is already a tenant.
    Exists,
    /// Lookup of a name that is not a tenant.
    NoSuchDb,
    /// Durable storage failed; the message says what broke (and what
    /// state the registry was left in).
    Storage(String),
}

/// One tenant: a named database with its pinned index catalog and,
/// when the server is persistent, its open write-ahead log.
#[derive(Debug)]
pub struct Tenant {
    name: String,
    /// Set by `DROP DB`: the tenant is out of the registry, and
    /// sessions still holding an `Arc` must refuse further commands.
    dropped: AtomicBool,
    /// Admission-control cap on a plan's cost exponent, stored as
    /// `f64` bits; [`BUDGET_UNSET`] (a NaN pattern no real cap can
    /// produce) means "no cap". Atomics, not a lock: budgets are read
    /// on every query and written only by `SET BUDGET`.
    budget_exponent: AtomicU64,
    /// Admission-control cap on a plan's estimated operation count
    /// (`CostEstimate::operations`, the AGM-style worst case);
    /// `u64::MAX` means "no cap".
    budget_rows: AtomicU64,
    /// Per-query evaluation deadline in milliseconds (`SET TIMEOUT`);
    /// `u64::MAX` means "no deadline".
    timeout_ms: AtomicU64,
    /// `Some(reason)` after an unrecoverable storage failure: the
    /// tenant is read-only (mutations and `SAVE` refuse) until a
    /// `RESUME` checkpoint rolls a fresh WAL segment.
    degraded: Mutex<Option<String>>,
    /// Group-commit gate: coalesces concurrent committers' fsyncs when
    /// the server's [`WritePolicy`] asks for durable acks.
    group: GroupGate,
    slot: RwLock<TenantDb>,
}

/// Server-wide write-path policy, set once at boot (before serving).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WritePolicy {
    /// `Some(window)`: every mutation ack waits for an fsync covering
    /// its WAL append, coalesced across committers by a per-tenant
    /// [`GroupGate`] whose leader waits `window` before flushing
    /// (`cqd --group-commit-ms`). `None`: appends reach the OS page
    /// cache per record and stable storage at checkpoints only — the
    /// pre-group-commit behavior.
    pub group_commit: Option<Duration>,
    /// Checkpoint a tenant automatically once its WAL exceeds this
    /// many record bytes (`cqd --auto-save-bytes`), instead of waiting
    /// for an explicit `SAVE`.
    pub auto_save_bytes: Option<u64>,
}

/// Sentinel bits for "no budget set" (`u64::MAX` is a NaN pattern, so
/// it cannot collide with a stored finite exponent).
const BUDGET_UNSET: u64 = u64::MAX;

/// A tenant's admission-control budget, read per query at plan time.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Budget {
    /// Reject plans whose cost exponent exceeds this.
    pub max_exponent: Option<f64>,
    /// Reject plans whose estimated operations exceed this.
    pub max_rows: Option<u64>,
}

impl Budget {
    /// Is any cap set?
    pub fn is_set(&self) -> bool {
        self.max_exponent.is_some() || self.max_rows.is_some()
    }
}

#[derive(Debug)]
struct TenantDb {
    db: Database,
    catalog: Arc<IndexCatalog>,
    /// `Some` iff the server runs with a data directory.
    wal: Option<WalWriter>,
}

impl Tenant {
    fn new(name: &str, db: Database, wal: Option<WalWriter>) -> Tenant {
        Tenant {
            name: name.to_string(),
            dropped: AtomicBool::new(false),
            budget_exponent: AtomicU64::new(BUDGET_UNSET),
            budget_rows: AtomicU64::new(BUDGET_UNSET),
            timeout_ms: AtomicU64::new(BUDGET_UNSET),
            degraded: Mutex::new(None),
            group: GroupGate::new(),
            slot: RwLock::new(TenantDb {
                db,
                catalog: Arc::new(IndexCatalog::new()),
                wal,
            }),
        }
    }

    /// The tenant's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The current admission-control budget.
    pub fn budget(&self) -> Budget {
        let exp = self.budget_exponent.load(Ordering::Relaxed);
        let rows = self.budget_rows.load(Ordering::Relaxed);
        Budget {
            max_exponent: (exp != BUDGET_UNSET).then(|| f64::from_bits(exp)),
            max_rows: (rows != BUDGET_UNSET).then_some(rows),
        }
    }

    /// Cap (or uncap, with `None`) the plan-cost exponent.
    pub fn set_max_exponent(&self, e: Option<f64>) {
        let bits = e.map_or(BUDGET_UNSET, f64::to_bits);
        self.budget_exponent.store(bits, Ordering::Relaxed);
    }

    /// Cap (or uncap, with `None`) the estimated operation count.
    /// `u64::MAX` itself is clamped down by one (it is the sentinel).
    pub fn set_max_rows(&self, n: Option<u64>) {
        let v = n.map_or(BUDGET_UNSET, |n| n.min(BUDGET_UNSET - 1));
        self.budget_rows.store(v, Ordering::Relaxed);
    }

    /// Clear both caps.
    pub fn clear_budget(&self) {
        self.set_max_exponent(None);
        self.set_max_rows(None);
    }

    /// The per-query evaluation deadline, if one is set.
    pub fn timeout(&self) -> Option<Duration> {
        let ms = self.timeout_ms.load(Ordering::Relaxed);
        (ms != BUDGET_UNSET).then(|| Duration::from_millis(ms))
    }

    /// Set (or clear, with `None`) the per-query deadline. `u64::MAX`
    /// milliseconds is clamped down by one (it is the sentinel).
    pub fn set_timeout_ms(&self, ms: Option<u64>) {
        let v = ms.map_or(BUDGET_UNSET, |ms| ms.min(BUDGET_UNSET - 1));
        self.timeout_ms.store(v, Ordering::Relaxed);
    }

    /// The tenant's limits in the WAL's persisted form.
    pub fn limits(&self) -> TenantLimits {
        TenantLimits {
            max_exponent_bits: self.budget_exponent.load(Ordering::Relaxed),
            max_rows: self.budget_rows.load(Ordering::Relaxed),
            timeout_ms: self.timeout_ms.load(Ordering::Relaxed),
        }
    }

    /// Restore limits recovered from the WAL (the boot path).
    pub fn apply_limits(&self, l: TenantLimits) {
        self.budget_exponent.store(l.max_exponent_bits, Ordering::Relaxed);
        self.budget_rows.store(l.max_rows, Ordering::Relaxed);
        self.timeout_ms.store(l.timeout_ms, Ordering::Relaxed);
    }

    /// Append the current limit set to the WAL so it survives a
    /// restart. A no-op (always `Ok`) on an in-memory tenant.
    pub fn persist_limits(&self) -> std::io::Result<()> {
        self.persist_limits_durable(None)
    }

    /// [`Tenant::persist_limits`] under the server's group-commit
    /// window: limit changes are acked with the same durability as any
    /// other mutation.
    pub fn persist_limits_durable(
        &self,
        window: Option<Duration>,
    ) -> std::io::Result<()> {
        let limits = self.limits();
        self.mutate_durable(window, |_db| ((), Some(WalRecord::SetLimits(limits)))).1
    }

    /// Why this tenant is read-only, if it is.
    pub fn degraded_reason(&self) -> Option<String> {
        self.degraded.lock().unwrap_or_else(|p| p.into_inner()).clone()
    }

    /// Is this tenant in read-only degraded mode?
    pub fn is_degraded(&self) -> bool {
        self.degraded_reason().is_some()
    }

    /// Enter read-only mode (first reason wins; a tenant already
    /// degraded keeps its original diagnosis).
    pub fn set_degraded(&self, reason: &str) {
        let mut slot = self.degraded.lock().unwrap_or_else(|p| p.into_inner());
        if slot.is_none() {
            *slot = Some(reason.to_string());
        }
    }

    /// Leave read-only mode (the `RESUME` success path).
    pub fn clear_degraded(&self) {
        *self.degraded.lock().unwrap_or_else(|p| p.into_inner()) = None;
    }

    /// Is the tenant's WAL writer poisoned (a failed rollback or reset
    /// left the on-disk log untrustworthy)? `None` on an in-memory
    /// tenant.
    pub fn wal_poisoned(&self) -> Option<bool> {
        self.read_slot().wal.as_ref().map(WalWriter::is_poisoned)
    }

    /// Has this tenant been `DROP DB`ed out of the registry?
    pub fn is_dropped(&self) -> bool {
        self.dropped.load(Ordering::SeqCst)
    }

    fn read_slot(&self) -> RwLockReadGuard<'_, TenantDb> {
        self.slot.read().unwrap_or_else(|p| p.into_inner())
    }

    fn write_slot(&self) -> RwLockWriteGuard<'_, TenantDb> {
        self.slot.write().unwrap_or_else(|p| p.into_inner())
    }

    /// Run `f` with shared access to the database and its pinned
    /// catalog. Many readers evaluate concurrently; mutations wait.
    pub fn read<T>(&self, f: impl FnOnce(&Database, &IndexCatalog) -> T) -> T {
        let slot = self.read_slot();
        f(&slot.db, &slot.catalog)
    }

    /// Run `f` with exclusive access to the database. If `f` mutates it
    /// (the generation changes), a fresh catalog is pinned so indexes
    /// of the old state are dropped immediately.
    pub fn mutate<T>(&self, f: impl FnOnce(&mut Database) -> T) -> T {
        self.mutate_wal(|db| (f(db), None)).0
    }

    /// [`Tenant::mutate`], write-ahead logged: `f` returns the record
    /// describing the mutation it performed (`None` for no-ops and
    /// refusals). The record is appended under the same write lock
    /// that applied the mutation, so the log's order *is* the
    /// database's mutation order. On an in-memory tenant the record is
    /// discarded.
    ///
    /// The second return is the WAL outcome: on an append error the
    /// in-memory mutation stands (readers already may have seen it)
    /// but durability is broken, and the caller must surface that.
    pub fn mutate_wal<T>(
        &self,
        f: impl FnOnce(&mut Database) -> (T, Option<WalRecord>),
    ) -> (T, std::io::Result<()>) {
        self.mutate_durable(None, f)
    }

    /// [`Tenant::mutate_wal`] with group commit: when `window` is
    /// `Some`, the WAL outcome additionally covers an fsync of the
    /// append — coalesced across concurrent committers through the
    /// tenant's [`GroupGate`], whose leader waits `window` before
    /// flushing. `Ok` then means *on stable storage*, not merely in
    /// the OS page cache; a failed group sync is reported to every
    /// committer it covered, so no ack can be false.
    ///
    /// The append sequence is captured under the same write lock that
    /// applied the mutation ([`WalStats::appends`] only moves under
    /// that lock), and the gate is waited on *after* the lock is
    /// released so readers and the sync leader are never blocked by a
    /// committer parked at the gate.
    pub fn mutate_durable<T>(
        &self,
        window: Option<Duration>,
        f: impl FnOnce(&mut Database) -> (T, Option<WalRecord>),
    ) -> (T, std::io::Result<()>) {
        let (out, seq, wal_result) = {
            let mut slot = self.write_slot();
            let before = slot.db.generation();
            let (out, record) = f(&mut slot.db);
            if slot.db.generation() != before {
                slot.catalog = Arc::new(IndexCatalog::new());
            }
            match (&record, &mut slot.wal) {
                (Some(rec), Some(wal)) => match wal.append(rec) {
                    Ok(_) => (out, Some(wal.stats().appends), Ok(())),
                    Err(e) => (out, None, Err(e)),
                },
                _ => (out, None, Ok(())),
            }
        };
        let wal_result = match (wal_result, seq, window) {
            (Ok(()), Some(seq), Some(window)) => {
                self.group.commit(seq, window, || {
                    let mut slot = self.write_slot();
                    match slot.wal.as_mut() {
                        Some(wal) => (wal.stats().appends, wal.sync()),
                        // WAL vanished mid-commit (not reachable today:
                        // a tenant never loses its writer) — nothing to
                        // sync, nothing to fail
                        None => (seq, Ok(())),
                    }
                })
            }
            (r, _, _) => r,
        };
        (out, wal_result)
    }

    /// Group-commit sync rounds performed so far (one per coalesced
    /// leader flush); together with [`WalStats::syncs`] this exposes
    /// the coalescing factor.
    pub fn group_rounds(&self) -> u64 {
        self.group.rounds()
    }

    /// Bytes in the write-ahead log since the last checkpoint (`None`
    /// on an in-memory tenant) — the auto-checkpoint threshold input.
    pub fn wal_len(&self) -> Option<u64> {
        self.read_slot().wal.as_ref().map(WalWriter::len)
    }

    /// Checkpoint this tenant into `store`: atomic snapshot of the
    /// current database, then WAL truncation, all under the write lock
    /// so no mutation lands between the two. Returns
    /// `(rows snapshotted, snapshot bytes)`.
    ///
    /// # Panics
    /// If the tenant has no WAL (callers only route `SAVE` here on a
    /// persistent server).
    pub fn checkpoint(&self, store: &Store) -> Result<(usize, u64), StoreError> {
        let limits = self.limits();
        let mut slot = self.write_slot();
        let TenantDb { db, wal, .. } = &mut *slot;
        let wal = wal.as_mut().expect("checkpoint requires a persistent tenant");
        let bytes = store.checkpoint(&self.name, db, wal)?;
        // limits are not part of the snapshot image: re-append them as
        // the first record of the fresh log so they survive truncation
        if limits.is_set() {
            wal.append(&WalRecord::SetLimits(limits)).map_err(StoreError::Io)?;
        }
        Ok((db.size(), bytes))
    }

    /// The tenant's shippable position: `(wal epoch, wal record
    /// bytes)`. `None` on an in-memory tenant (nothing to replicate
    /// from).
    pub fn wal_position(&self) -> Option<(u64, u64)> {
        let slot = self.read_slot();
        slot.wal.as_ref().map(|w| (w.epoch(), w.len()))
    }

    /// The next replication segment for a replica that has applied
    /// through `(epoch, offset)`: WAL record bytes (at most `max` of
    /// them) when the replica's epoch matches the live log, the whole
    /// snapshot otherwise. Bytes are read under the tenant's read lock,
    /// which excludes writers and checkpoints — a segment is always a
    /// consistent cut of one epoch.
    ///
    /// # Panics
    /// If the tenant has no WAL (callers only route `SHIP` here on a
    /// persistent server).
    pub fn ship(
        &self,
        store: &Store,
        epoch: u64,
        offset: u64,
        max: u64,
    ) -> Result<ShipSegment, StoreError> {
        let slot = self.read_slot();
        let wal = slot.wal.as_ref().expect("SHIP requires a persistent tenant");
        let cur_epoch = wal.epoch();
        let len = wal.len();
        if epoch == cur_epoch && offset <= len {
            let take = (len - offset).min(max);
            let bytes = store.read_wal_range(&self.name, offset, take)?;
            Ok(ShipSegment::Wal { epoch: cur_epoch, offset, total: len, bytes })
        } else {
            // the replica's log position is from another epoch (a
            // checkpoint rolled the log since) — restart it from the
            // snapshot image; no snapshot file means "empty database"
            let bytes = store.read_snapshot_bytes(&self.name)?.unwrap_or_default();
            Ok(ShipSegment::Snapshot { epoch: cur_epoch, bytes })
        }
    }

    /// `(n_relations, n_tuples)` of the current state.
    pub fn sizes(&self) -> (usize, usize) {
        let slot = self.read_slot();
        (slot.db.n_relations(), slot.db.size())
    }

    /// Point-in-time catalog counters and WAL write counters (`None`
    /// on an in-memory tenant) — the pull side of `METRICS`.
    pub fn read_meta(&self) -> (CatalogStats, Option<WalStats>) {
        let slot = self.read_slot();
        (slot.catalog.snapshot(), slot.wal.as_ref().map(WalWriter::stats))
    }

    /// The `STATS <name>` detail: generation, per-relation schema in
    /// name order, and the WAL length (`None` on an in-memory server).
    pub fn detail(&self) -> TenantDetail {
        let slot = self.read_slot();
        TenantDetail {
            generation: slot.db.generation(),
            n_relations: slot.db.n_relations(),
            n_tuples: slot.db.size(),
            relations: slot
                .db
                .iter_sorted()
                .map(|(n, r)| (n.to_string(), r.arity(), r.len()))
                .collect(),
            wal_bytes: slot.wal.as_ref().map(WalWriter::len),
            wal_poisoned: slot.wal.as_ref().map(WalWriter::is_poisoned),
            degraded: self.degraded_reason(),
        }
    }
}

/// One replication segment, as [`Tenant::ship`] cuts it.
#[derive(Debug)]
pub enum ShipSegment {
    /// WAL record bytes `[offset, offset + bytes.len())` of epoch
    /// `epoch`'s log, whose record region is `total` bytes long right
    /// now — the replica's lag is `total - offset - bytes.len()`.
    Wal {
        /// The live log's epoch.
        epoch: u64,
        /// Where in the record region these bytes start.
        offset: u64,
        /// The record region's current total length.
        total: u64,
        /// The raw record bytes (may end mid-frame; the replica
        /// buffers and decodes complete frames only).
        bytes: Vec<u8>,
    },
    /// The whole snapshot image for epoch `epoch`; empty bytes mean
    /// "no snapshot — start from an empty database". The replica
    /// restarts its WAL offset at 0 after applying.
    Snapshot {
        /// The epoch the replica adopts (the live log's epoch; the
        /// snapshot was written at the checkpoint that opened it).
        epoch: u64,
        /// The serialized snapshot (`cq_storage::snapshot` format).
        bytes: Vec<u8>,
    },
}

/// A point-in-time description of one tenant, for `STATS <name>`.
#[derive(Debug)]
pub struct TenantDetail {
    /// The database's content-identity stamp (process-unique per
    /// mutation): two `STATS` readings with equal generation saw the
    /// exact same content, and a changed generation proves a mutation
    /// landed — recovery verification without querying data.
    pub generation: u64,
    /// Relation count.
    pub n_relations: usize,
    /// Total tuples (the paper's `m`).
    pub n_tuples: usize,
    /// `(name, arity, rows)` in name order.
    pub relations: Vec<(String, usize, usize)>,
    /// Bytes in the write-ahead log since the last checkpoint;
    /// `None` on an in-memory server.
    pub wal_bytes: Option<u64>,
    /// Is the WAL writer poisoned (untrustworthy after a failed
    /// rollback/reset)? `None` on an in-memory server.
    pub wal_poisoned: Option<bool>,
    /// Why the tenant is read-only, when it is degraded.
    pub degraded: Option<String>,
}

/// What boot-time recovery found for one tenant, for `cqd` to print.
#[derive(Debug)]
pub struct RecoveredTenant {
    /// Tenant name.
    pub name: String,
    /// Relations after recovery.
    pub n_relations: usize,
    /// Tuples after recovery.
    pub n_tuples: usize,
    /// Rows restored from the snapshot.
    pub snapshot_rows: usize,
    /// WAL records replayed on top.
    pub wal_records: usize,
    /// Torn WAL tail bytes truncated (0 for a clean shutdown).
    pub torn_bytes: u64,
    /// WAL records discarded as stale (a crash landed between a
    /// checkpoint's snapshot and its log reset; the snapshot already
    /// holds their effects).
    pub stale_records: usize,
}

/// The registry of tenants, shared by all sessions of one server.
pub struct ServerState {
    tenants: RwLock<BTreeMap<String, Arc<Tenant>>>,
    /// `Some` iff the server runs with a data directory.
    store: Option<Arc<Store>>,
    /// Process-wide metrics registry and slow-query log.
    metrics: Arc<ServerMetrics>,
    /// Group-commit and auto-checkpoint knobs; set at boot, read per
    /// mutation.
    policy: RwLock<WritePolicy>,
    /// `Some(primary address)` when this server is a read-only replica
    /// (`cqd --replica-of`): every mutation verb refuses, naming where
    /// writes should go instead.
    replica_of: RwLock<Option<String>>,
}

impl Default for ServerState {
    fn default() -> Self {
        Self::new()
    }
}

impl ServerState {
    /// An empty in-memory registry (no durability).
    pub fn new() -> ServerState {
        ServerState {
            tenants: RwLock::default(),
            store: None,
            metrics: Arc::new(ServerMetrics::new()),
            policy: RwLock::default(),
            replica_of: RwLock::default(),
        }
    }

    /// A registry over a data directory: every tenant on disk is
    /// recovered (snapshot + WAL replay, torn tails truncated), in
    /// name order, before the server takes traffic. Returns the
    /// per-tenant recovery summaries alongside the state.
    pub fn recover(
        store: Store,
    ) -> Result<(ServerState, Vec<RecoveredTenant>), StoreError> {
        let store = Arc::new(store);
        let mut tenants = BTreeMap::new();
        let mut report = Vec::new();
        for name in store.tenant_names()? {
            let (db, wal, recovery) = store.load_tenant(&name)?;
            report.push(RecoveredTenant {
                name: name.clone(),
                n_relations: db.n_relations(),
                n_tuples: db.size(),
                snapshot_rows: recovery.snapshot_rows,
                wal_records: recovery.wal_records,
                torn_bytes: recovery.torn_bytes,
                stale_records: recovery.stale_records,
            });
            let tenant = Arc::new(Tenant::new(&name, db, Some(wal)));
            // persisted `SET BUDGET` / `SET TIMEOUT` limits survive
            // the restart
            if let Some(limits) = recovery.limits {
                tenant.apply_limits(limits);
            }
            tenants.insert(name.clone(), tenant);
        }
        let state = ServerState {
            tenants: RwLock::new(tenants),
            store: Some(store),
            metrics: Arc::new(ServerMetrics::new()),
            policy: RwLock::default(),
            replica_of: RwLock::default(),
        };
        Ok((state, report))
    }

    /// The backing store, when the server is persistent.
    pub fn store(&self) -> Option<&Arc<Store>> {
        self.store.as_ref()
    }

    /// The server's metrics registry and slow-query log.
    pub fn metrics(&self) -> &Arc<ServerMetrics> {
        &self.metrics
    }

    /// The write-path policy every session applies to mutations.
    pub fn write_policy(&self) -> WritePolicy {
        *self.policy.read().unwrap_or_else(|p| p.into_inner())
    }

    /// Install the write-path policy (boot-time configuration: `cqd`
    /// flags, or a test setting up a scenario before serving).
    pub fn set_write_policy(&self, policy: WritePolicy) {
        *self.policy.write().unwrap_or_else(|p| p.into_inner()) = policy;
    }

    /// `Some(primary address)` when this server is a read-only replica.
    pub fn replica_of(&self) -> Option<String> {
        self.replica_of.read().unwrap_or_else(|p| p.into_inner()).clone()
    }

    /// Mark this server as a read-only replica of `primary` (the
    /// `--replica-of` boot path). Mutation verbs then answer
    /// `ERR read-only` naming the primary.
    pub fn set_replica_of(&self, primary: &str) {
        *self.replica_of.write().unwrap_or_else(|p| p.into_inner()) =
            Some(primary.to_string());
    }

    fn map(&self) -> RwLockReadGuard<'_, BTreeMap<String, Arc<Tenant>>> {
        self.tenants.read().unwrap_or_else(|p| p.into_inner())
    }

    /// Create a tenant. Names are validated by the protocol layer. On
    /// a persistent server this also creates the tenant's directory
    /// and empty WAL — a tenant exists durably from `CREATE DB`, not
    /// from its first mutation.
    pub fn create_db(&self, name: &str) -> Result<Arc<Tenant>, StateError> {
        let mut map = self.tenants.write().unwrap_or_else(|p| p.into_inner());
        if map.contains_key(name) {
            return Err(StateError::Exists);
        }
        let wal = match &self.store {
            Some(store) => Some(
                store
                    .create_tenant(name)
                    .map_err(|e| StateError::Storage(e.to_string()))?,
            ),
            None => None,
        };
        let t = Arc::new(Tenant::new(name, Database::new(), wal));
        map.insert(name.to_string(), Arc::clone(&t));
        Ok(t)
    }

    /// Drop a tenant: remove it from the registry, flag it so sessions
    /// still holding it refuse further commands, and (when persistent)
    /// delete its directory. In-flight evaluations on other sessions
    /// finish safely on their `Arc`.
    pub fn drop_db(&self, name: &str) -> Result<(), StateError> {
        let tenant = {
            let mut map = self.tenants.write().unwrap_or_else(|p| p.into_inner());
            map.remove(name).ok_or(StateError::NoSuchDb)?
        };
        tenant.dropped.store(true, Ordering::SeqCst);
        self.metrics.drop_tenant(name);
        if let Some(store) = &self.store {
            // registry removal already happened; a disk error leaves
            // stale files behind but the tenant is gone either way
            store.drop_tenant(name).map_err(|e| {
                StateError::Storage(format!(
                    "`{name}` dropped from the registry, but removing its files \
                     failed: {e}"
                ))
            })?;
        }
        Ok(())
    }

    /// Resolve a tenant by name.
    pub fn tenant(&self, name: &str) -> Result<Arc<Tenant>, StateError> {
        self.map().get(name).cloned().ok_or(StateError::NoSuchDb)
    }

    /// All tenants in name order (the `STATS` listing order).
    pub fn tenants(&self) -> Vec<Arc<Tenant>> {
        self.map().values().cloned().collect()
    }

    /// Number of tenants.
    pub fn n_tenants(&self) -> usize {
        self.map().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cq_data::Relation;

    fn temp_store(tag: &str) -> Store {
        let dir = std::env::temp_dir()
            .join(format!("cq_state_test_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Store::open_dir(dir).unwrap()
    }

    #[test]
    fn create_use_and_duplicate() {
        let s = ServerState::new();
        assert!(s.create_db("alpha").is_ok());
        assert_eq!(s.create_db("alpha").unwrap_err(), StateError::Exists);
        assert!(s.tenant("alpha").is_ok());
        assert_eq!(s.tenant("beta").unwrap_err(), StateError::NoSuchDb);
        s.create_db("beta").unwrap();
        let names: Vec<_> = s.tenants().iter().map(|t| t.name().to_string()).collect();
        assert_eq!(names, ["alpha", "beta"]); // sorted for deterministic STATS
        assert_eq!(s.n_tenants(), 2);
        assert!(s.store().is_none());
    }

    #[test]
    fn mutation_repins_the_catalog() {
        let s = ServerState::new();
        let t = s.create_db("db").unwrap();
        // warm the catalog
        let stats_before = t.read(|db, cat| {
            cat.stats(db);
            cat.snapshot()
        });
        assert!(stats_before.misses > 0);
        // a read-only "mutation" keeps the pinned catalog
        t.mutate(|_db| {});
        assert!(t.read(|_, cat| cat.snapshot()).misses > 0, "catalog kept");
        // a real mutation pins a fresh (empty) catalog
        t.mutate(|db| {
            db.insert("R", Relation::from_pairs(vec![(1, 2)]));
        });
        let snap = t.read(|_, cat| cat.snapshot());
        assert_eq!(snap.misses + snap.hits, 0, "fresh catalog after mutation");
        assert_eq!(t.sizes(), (1, 1));
    }

    #[test]
    fn drop_db_flags_live_handles() {
        let s = ServerState::new();
        let t = s.create_db("gone").unwrap();
        assert!(!t.is_dropped());
        assert_eq!(s.drop_db("missing").unwrap_err(), StateError::NoSuchDb);
        s.drop_db("gone").unwrap();
        assert!(t.is_dropped(), "held Arcs see the drop");
        assert_eq!(s.tenant("gone").unwrap_err(), StateError::NoSuchDb);
        assert_eq!(s.n_tenants(), 0);
        // the name is immediately reusable, as a fresh tenant
        let t2 = s.create_db("gone").unwrap();
        assert!(!t2.is_dropped());
    }

    #[test]
    fn persistent_registry_recovers_mutations_and_drops() {
        let store = temp_store("recover");
        let root = store.root().to_path_buf();
        {
            let (s, report) = ServerState::recover(store).unwrap();
            assert!(report.is_empty());
            let t = s.create_db("t1").unwrap();
            let (_, wal) = t.mutate_wal(|db| {
                let mut rel = Relation::new(2);
                rel.insert_row(&[1, 2]);
                db.insert("R", rel);
                ((), Some(WalRecord::Insert { relation: "R".into(), row: vec![1, 2] }))
            });
            wal.unwrap();
            s.create_db("t2").unwrap();
            s.drop_db("t2").unwrap();
            assert!(!root.join("t2").exists(), "drop removes the tenant dir");
        }
        // "reboot": a fresh registry over the same directory
        let (s, report) = ServerState::recover(Store::open_dir(&root).unwrap()).unwrap();
        assert_eq!(report.len(), 1);
        assert_eq!(report[0].name, "t1");
        assert_eq!(report[0].wal_records, 1);
        assert_eq!(report[0].torn_bytes, 0);
        let t = s.tenant("t1").unwrap();
        assert_eq!(t.sizes(), (1, 1));
        t.read(|db, _| {
            assert_eq!(db.get("R").unwrap(), &Relation::from_pairs(vec![(1, 2)]));
        });
        // checkpoint: snapshot written, wal emptied, content unchanged
        let store = Arc::clone(s.store().unwrap());
        let (rows, bytes) = t.checkpoint(&store).unwrap();
        assert_eq!(rows, 1);
        assert!(bytes > 0);
        assert_eq!(t.detail().wal_bytes, Some(0));
        drop(store); // release the data-dir lock before the next reopen
        drop(s);
        let (s, report) = ServerState::recover(Store::open_dir(&root).unwrap()).unwrap();
        assert_eq!(report[0].snapshot_rows, 1);
        assert_eq!(report[0].wal_records, 0);
        assert_eq!(s.tenant("t1").unwrap().sizes(), (1, 1));
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn timeout_and_degraded_state_machine() {
        let s = ServerState::new();
        let t = s.create_db("d").unwrap();
        assert_eq!(t.timeout(), None);
        t.set_timeout_ms(Some(250));
        assert_eq!(t.timeout(), Some(Duration::from_millis(250)));
        t.set_timeout_ms(None);
        assert_eq!(t.timeout(), None);
        assert!(!t.is_degraded());
        t.set_degraded("wal append failed: disk full");
        t.set_degraded("second diagnosis"); // first reason wins
        assert_eq!(t.degraded_reason().as_deref(), Some("wal append failed: disk full"));
        assert!(t.detail().degraded.is_some());
        t.clear_degraded();
        assert!(!t.is_degraded());
        assert_eq!(t.wal_poisoned(), None, "in-memory tenants have no wal");
        assert!(t.persist_limits().is_ok(), "limit persistence is a no-op in memory");
    }

    #[test]
    fn limits_survive_checkpoint_and_recovery() {
        let store = temp_store("limits");
        let root = store.root().to_path_buf();
        {
            let (s, _) = ServerState::recover(store).unwrap();
            let t = s.create_db("t1").unwrap();
            t.set_max_exponent(Some(1.25));
            t.set_max_rows(Some(500));
            t.set_timeout_ms(Some(750));
            t.persist_limits().unwrap();
        }
        let (s, _) = ServerState::recover(Store::open_dir(&root).unwrap()).unwrap();
        let t = s.tenant("t1").unwrap();
        assert_eq!(t.budget(), Budget { max_exponent: Some(1.25), max_rows: Some(500) });
        assert_eq!(t.timeout(), Some(Duration::from_millis(750)));
        // a checkpoint truncates the wal but re-appends the limit record
        let store = Arc::clone(s.store().unwrap());
        t.checkpoint(&store).unwrap();
        drop(store);
        drop(s);
        let (s, _) = ServerState::recover(Store::open_dir(&root).unwrap()).unwrap();
        let t = s.tenant("t1").unwrap();
        assert_eq!(t.timeout(), Some(Duration::from_millis(750)));
        assert_eq!(t.budget().max_rows, Some(500));
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn detail_reports_schema_generation_and_wal() {
        let s = ServerState::new();
        let t = s.create_db("d").unwrap();
        t.mutate(|db| {
            db.insert("B", Relation::from_pairs(vec![(1, 2), (3, 4)]));
            db.insert("A", Relation::from_values(vec![7]));
        });
        let d = t.detail();
        assert_eq!(d.n_relations, 2);
        assert_eq!(d.n_tuples, 3);
        assert_eq!(d.relations, vec![("A".to_string(), 1, 1), ("B".to_string(), 2, 2)]);
        assert_eq!(d.wal_bytes, None, "in-memory tenants have no wal");
        let g = d.generation;
        t.mutate(|db| {
            db.insert("A", Relation::from_values(vec![7, 8]));
        });
        assert_ne!(t.detail().generation, g, "mutation moves the generation");
    }
}
