//! Multi-tenant server state: named databases with pinned catalogs.
//!
//! Tenancy model: one [`Database`] plus one [`IndexCatalog`] per named
//! tenant. The catalog is *pinned* to the tenant (not looked up through
//! the facade's generation-keyed registry), so a tenant's working set
//! of sorted views, hash indexes, and preprocessing artifacts can never
//! be evicted by traffic on other tenants. Catalogs self-invalidate by
//! [`Database::generation`], and every mutation additionally re-pins a
//! fresh catalog so memory for the old state is dropped eagerly.
//!
//! Locking: the tenant map is under one [`RwLock`] (resolved per
//! command, never held across evaluation); each tenant holds its
//! database and catalog under a second [`RwLock`] so any number of
//! sessions evaluate concurrently against one tenant while mutations
//! (`INSERT`, `LOAD`) get exclusive access. All lock acquisitions are
//! poison-tolerant: a panicked handler cannot take a tenant down.

use cq_data::{Database, IndexCatalog};
use std::collections::BTreeMap;
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Why a tenant operation was refused.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StateError {
    /// `CREATE DB` of a name that is already a tenant.
    Exists,
    /// Lookup of a name that is not a tenant.
    NoSuchDb,
}

/// One tenant: a named database with its pinned index catalog.
#[derive(Debug)]
pub struct Tenant {
    name: String,
    slot: RwLock<TenantDb>,
}

#[derive(Debug)]
struct TenantDb {
    db: Database,
    catalog: Arc<IndexCatalog>,
}

impl Tenant {
    fn new(name: &str) -> Tenant {
        Tenant {
            name: name.to_string(),
            slot: RwLock::new(TenantDb {
                db: Database::new(),
                catalog: Arc::new(IndexCatalog::new()),
            }),
        }
    }

    /// The tenant's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    fn read_slot(&self) -> RwLockReadGuard<'_, TenantDb> {
        self.slot.read().unwrap_or_else(|p| p.into_inner())
    }

    fn write_slot(&self) -> RwLockWriteGuard<'_, TenantDb> {
        self.slot.write().unwrap_or_else(|p| p.into_inner())
    }

    /// Run `f` with shared access to the database and its pinned
    /// catalog. Many readers evaluate concurrently; mutations wait.
    pub fn read<T>(&self, f: impl FnOnce(&Database, &IndexCatalog) -> T) -> T {
        let slot = self.read_slot();
        f(&slot.db, &slot.catalog)
    }

    /// Run `f` with exclusive access to the database. If `f` mutates it
    /// (the generation changes), a fresh catalog is pinned so indexes
    /// of the old state are dropped immediately.
    pub fn mutate<T>(&self, f: impl FnOnce(&mut Database) -> T) -> T {
        let mut slot = self.write_slot();
        let before = slot.db.generation();
        let out = f(&mut slot.db);
        if slot.db.generation() != before {
            slot.catalog = Arc::new(IndexCatalog::new());
        }
        out
    }

    /// `(n_relations, n_tuples)` of the current state.
    pub fn sizes(&self) -> (usize, usize) {
        let slot = self.read_slot();
        (slot.db.n_relations(), slot.db.size())
    }
}

/// The registry of tenants, shared by all sessions of one server.
#[derive(Default)]
pub struct ServerState {
    tenants: RwLock<BTreeMap<String, Arc<Tenant>>>,
}

impl ServerState {
    /// An empty registry.
    pub fn new() -> ServerState {
        ServerState::default()
    }

    fn map(&self) -> RwLockReadGuard<'_, BTreeMap<String, Arc<Tenant>>> {
        self.tenants.read().unwrap_or_else(|p| p.into_inner())
    }

    /// Create a tenant. Names are validated by the protocol layer.
    pub fn create_db(&self, name: &str) -> Result<Arc<Tenant>, StateError> {
        let mut map = self.tenants.write().unwrap_or_else(|p| p.into_inner());
        if map.contains_key(name) {
            return Err(StateError::Exists);
        }
        let t = Arc::new(Tenant::new(name));
        map.insert(name.to_string(), Arc::clone(&t));
        Ok(t)
    }

    /// Resolve a tenant by name.
    pub fn tenant(&self, name: &str) -> Result<Arc<Tenant>, StateError> {
        self.map().get(name).cloned().ok_or(StateError::NoSuchDb)
    }

    /// All tenants in name order (the `STATS` listing order).
    pub fn tenants(&self) -> Vec<Arc<Tenant>> {
        self.map().values().cloned().collect()
    }

    /// Number of tenants.
    pub fn n_tenants(&self) -> usize {
        self.map().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cq_data::Relation;

    #[test]
    fn create_use_and_duplicate() {
        let s = ServerState::new();
        assert!(s.create_db("alpha").is_ok());
        assert_eq!(s.create_db("alpha").unwrap_err(), StateError::Exists);
        assert!(s.tenant("alpha").is_ok());
        assert_eq!(s.tenant("beta").unwrap_err(), StateError::NoSuchDb);
        s.create_db("beta").unwrap();
        let names: Vec<_> = s.tenants().iter().map(|t| t.name().to_string()).collect();
        assert_eq!(names, ["alpha", "beta"]); // sorted for deterministic STATS
        assert_eq!(s.n_tenants(), 2);
    }

    #[test]
    fn mutation_repins_the_catalog() {
        let s = ServerState::new();
        let t = s.create_db("db").unwrap();
        // warm the catalog
        let stats_before = t.read(|db, cat| {
            cat.stats(db);
            cat.snapshot()
        });
        assert!(stats_before.misses > 0);
        // a read-only "mutation" keeps the pinned catalog
        t.mutate(|_db| {});
        assert!(t.read(|_, cat| cat.snapshot()).misses > 0, "catalog kept");
        // a real mutation pins a fresh (empty) catalog
        t.mutate(|db| {
            db.insert("R", Relation::from_pairs(vec![(1, 2)]));
        });
        let snap = t.read(|_, cat| cat.snapshot());
        assert_eq!(snap.misses + snap.hits, 0, "fresh catalog after mutation");
        assert_eq!(t.sizes(), (1, 1));
    }
}
