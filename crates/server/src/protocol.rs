//! The wire protocol: line-based text requests and framed text replies.
//!
//! ## Requests
//!
//! One command per line (LF or CRLF terminated); verbs are
//! case-insensitive, arguments are case-sensitive. Blank lines are
//! ignored. The grammar:
//!
//! ```text
//! command := PING
//!          | CREATE DB <name>
//!          | USE <name>
//!          | INSERT <rel> ( <val> [, <val>]* )      -- one tuple
//!          | LOAD <rel> <n-cols>                    -- rows follow, then END
//!          | DECIDE  <query-text>
//!          | COUNT   <query-text>
//!          | ANSWERS <query-text>
//!          | EXPLAIN <task> <query-text>            -- task: DECIDE|COUNT|ANSWERS|ACCESS
//!          | EXPLAIN ANALYZE <task> <query-text>    -- plan, execute, annotate with measured spans
//!          | CURSOR ANSWERS|ACCESS <query-text>     -- open a streaming cursor → OK cursor <id>
//!          | FETCH <id> <n>                         -- pull up to n rows from a cursor
//!          | SEEK <id> <k>                          -- jump to answer k (direct-access plans, O(1))
//!          | CLOSE <id>                             -- release a cursor
//!          | BATCH                                  -- items follow, then END
//!          | SAVE                                   -- checkpoint the current tenant
//!          | DROP DB <name>                         -- delete a tenant database
//!          | DROP <rel>                             -- delete one relation
//!          | STATS [<name>]                         -- server stats / tenant detail
//!          | METRICS [<name>]                       -- metrics registry / one tenant's scope
//!          | METRICS RATE [<name>] [<window-s>]     -- windowed counter rates from the history ring
//!          | PROFILE <name>                         -- a tenant's recent query traces (needs --profile)
//!          | SET BUDGET <name> MAX-EXPONENT <e>     -- admission control: cap plan cost m^e
//!          | SET BUDGET <name> MAX-ROWS <n>         -- ...or cap estimated operations
//!          | SET BUDGET <name> NONE                 -- clear both caps
//!          | SET TIMEOUT <name> <ms>                -- per-query evaluation deadline
//!          | SET TIMEOUT <name> NONE                -- clear the deadline
//!          | RESUME <name>                          -- restore a degraded tenant to read-write
//!          | SHIP                                   -- replication: list tenant ship positions
//!          | SHIP <db> <epoch> <offset>             -- replication: next snapshot/WAL segment
//!          | QUIT
//! ```
//!
//! `<query-text>` is the `cq_core::parser` syntax, e.g.
//! `q(x, z) :- R(x, y), S(y, z)`. `LOAD` rows are values separated by
//! whitespace and/or commas; `BATCH` items are `DECIDE|COUNT|ANSWERS
//! <query-text>` lines.
//!
//! ## Replies
//!
//! Every command produces exactly one reply: zero or more *data lines*,
//! each prefixed `* `, followed by exactly one *terminal line* that is
//! either `OK <info>` or `ERR <kind>: <message>`. Clients read lines
//! until the terminal. Errors never drop the connection — the session
//! keeps serving after any `ERR`.

use cq_data::{Relation, Val};
use cq_planner::Task;
use std::fmt;

/// Prefix of every data line on the wire.
pub const DATA_PREFIX: &str = "* ";
/// Terminator line for `LOAD` and `BATCH` blocks.
pub const END_KEYWORD: &str = "END";

/// Machine-readable error classes, rendered as `ERR <kind>: <message>`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ErrKind {
    /// Verb not in the protocol grammar.
    UnknownCommand,
    /// The request line is not valid UTF-8.
    BadUtf8,
    /// Verb recognized but arguments malformed.
    Usage,
    /// Database name outside `[A-Za-z0-9_]{1,64}`.
    BadName,
    /// `CREATE DB` of an existing tenant.
    Exists,
    /// `USE` of an unknown tenant.
    NoSuchDb,
    /// A data or query command before any `USE`.
    NoDb,
    /// A tuple value is not a `u64`.
    BadValue,
    /// A tuple's width disagrees with the relation's arity.
    ArityMismatch,
    /// `DROP` of a relation the current tenant does not have.
    NoSuchRelation,
    /// Query text rejected by `cq_core::parser` (syntax or semantics).
    Parse,
    /// The engine rejected the evaluation (e.g. missing relation).
    Eval,
    /// Durable storage refused: `SAVE` on an in-memory server, or a
    /// disk error while persisting a mutation or checkpoint.
    Storage,
    /// Admission control: the plan's cost exceeds the tenant's
    /// `SET BUDGET` cap; the message carries the lower-bound citation.
    Budget,
    /// Evaluation exceeded the tenant's `SET TIMEOUT` deadline (or was
    /// cancelled because the client disconnected); the message carries
    /// the plan's cost exponent and its lower-bound citation.
    Timeout,
    /// The tenant is in read-only degraded mode after an unrecoverable
    /// storage failure; mutations refuse until `RESUME <db>` succeeds.
    Degraded,
    /// The server is saturated (worker pool and overflow slots all
    /// busy); the connection is shed after this reply.
    Busy,
    /// The operation is structurally impossible for this plan — e.g.
    /// `SEEK` on a cursor whose operator enumerates with constant delay
    /// but has no random access; the message cites the plan op.
    Unsupported,
    /// `FETCH`/`SEEK`/`CLOSE` of a cursor id this session never opened
    /// (or already closed).
    NoSuchCursor,
    /// The cursor's pinned snapshot generation no longer matches the
    /// tenant: a mutation (or drop) invalidated it. The cursor is
    /// closed; re-open to see the new data.
    StaleCursor,
    /// `CURSOR` beyond the per-session open-cursor limit.
    CursorLimit,
    /// A mutation verb on a read-only replica (`cqd --replica-of`);
    /// the message names the primary that accepts writes.
    ReadOnly,
    /// A command handler panicked; the session survives.
    Internal,
    /// `PROFILE` on a server whose trace ring is disabled (`cqd` was
    /// started without `--profile N`); the message says how to enable
    /// it.
    TracingOff,
}

/// Every error kind, in declaration order — the shared vocabulary both
/// wire ends iterate (the client's [`ErrKind::parse`], kind-exhaustive
/// tests).
pub const ALL_ERR_KINDS: [ErrKind; 24] = [
    ErrKind::UnknownCommand,
    ErrKind::BadUtf8,
    ErrKind::Usage,
    ErrKind::BadName,
    ErrKind::Exists,
    ErrKind::NoSuchDb,
    ErrKind::NoDb,
    ErrKind::BadValue,
    ErrKind::ArityMismatch,
    ErrKind::NoSuchRelation,
    ErrKind::Parse,
    ErrKind::Eval,
    ErrKind::Storage,
    ErrKind::Budget,
    ErrKind::Timeout,
    ErrKind::Degraded,
    ErrKind::Busy,
    ErrKind::Unsupported,
    ErrKind::NoSuchCursor,
    ErrKind::StaleCursor,
    ErrKind::CursorLimit,
    ErrKind::ReadOnly,
    ErrKind::Internal,
    ErrKind::TracingOff,
];

impl ErrKind {
    /// The wire spelling of this kind.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrKind::UnknownCommand => "unknown-command",
            ErrKind::BadUtf8 => "bad-utf8",
            ErrKind::Usage => "usage",
            ErrKind::BadName => "bad-name",
            ErrKind::Exists => "exists",
            ErrKind::NoSuchDb => "no-such-db",
            ErrKind::NoDb => "no-db",
            ErrKind::BadValue => "bad-value",
            ErrKind::ArityMismatch => "arity-mismatch",
            ErrKind::NoSuchRelation => "no-such-relation",
            ErrKind::Parse => "parse",
            ErrKind::Eval => "eval",
            ErrKind::Storage => "storage",
            ErrKind::Budget => "budget",
            ErrKind::Timeout => "timeout",
            ErrKind::Degraded => "degraded",
            ErrKind::Busy => "busy",
            ErrKind::Unsupported => "unsupported",
            ErrKind::NoSuchCursor => "no-such-cursor",
            ErrKind::StaleCursor => "stale-cursor",
            ErrKind::CursorLimit => "cursor-limit",
            ErrKind::ReadOnly => "read-only",
            ErrKind::Internal => "internal",
            ErrKind::TracingOff => "tracing-off",
        }
    }

    /// The kind spelled `s` on the wire, if any — the client-side half
    /// of the shared vocabulary ([`Reply::err_kind`] uses this to type
    /// an `ERR <kind>: …` terminal).
    pub fn parse(s: &str) -> Option<ErrKind> {
        ALL_ERR_KINDS.iter().copied().find(|k| k.as_str() == s)
    }
}

impl fmt::Display for ErrKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One framed reply: data lines plus the terminal `OK`/`ERR` line.
///
/// [`Reply::write_to`] produces the wire form; [`crate::client::Client`]
/// parses it back into this same type, so servers, clients, and tests
/// all speak through one representation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Reply {
    /// Data lines, without the `* ` prefix.
    pub data: Vec<String>,
    /// The terminal line: `OK ...` or `ERR <kind>: ...`.
    pub terminal: String,
}

impl Reply {
    /// A success reply with no data lines.
    pub fn ok(info: impl fmt::Display) -> Reply {
        Reply::ok_with(Vec::new(), info)
    }

    /// A success reply with data lines (empty `info` renders as a bare
    /// `OK` terminal).
    pub fn ok_with(data: Vec<String>, info: impl fmt::Display) -> Reply {
        let info = info.to_string();
        let terminal =
            if info.is_empty() { "OK".to_string() } else { format!("OK {info}") };
        Reply { data, terminal }
    }

    /// An error reply with no data lines.
    pub fn err(kind: ErrKind, msg: impl fmt::Display) -> Reply {
        Reply { data: Vec::new(), terminal: format!("ERR {kind}: {msg}") }
    }

    /// An error reply with context data lines (e.g. a parse-error
    /// source snippet).
    pub fn err_with(kind: ErrKind, data: Vec<String>, msg: impl fmt::Display) -> Reply {
        Reply { data, terminal: format!("ERR {kind}: {msg}") }
    }

    /// Is the terminal line an `OK`?
    pub fn is_ok(&self) -> bool {
        self.terminal.starts_with("OK")
    }

    /// The typed kind of an `ERR <kind>: …` terminal; `None` for `OK`
    /// replies (and for kinds this build does not know, which a
    /// version-skewed peer could send).
    pub fn err_kind(&self) -> Option<ErrKind> {
        let rest = self.terminal.strip_prefix("ERR ")?;
        ErrKind::parse(rest.split(':').next()?.trim())
    }

    /// The text after `OK `, if this is a success reply.
    pub fn ok_info(&self) -> Option<&str> {
        self.terminal.strip_prefix("OK ").or_else(|| {
            if self.terminal == "OK" {
                Some("")
            } else {
                None
            }
        })
    }

    /// Serialize to the wire form (each line newline-terminated).
    pub fn write_to(&self, out: &mut impl std::io::Write) -> std::io::Result<()> {
        for d in &self.data {
            writeln!(out, "{DATA_PREFIX}{d}")?;
        }
        writeln!(out, "{}", self.terminal)
    }
}

/// A parsed request line.
///
/// (`PartialEq` only — `SET BUDGET` carries an `f64` exponent.)
#[derive(Clone, PartialEq, Debug)]
pub enum Command {
    /// Liveness probe.
    Ping,
    /// Create a tenant database.
    CreateDb(String),
    /// Select the connection's current tenant.
    Use(String),
    /// Insert one tuple into a relation of the current tenant.
    Insert {
        /// Relation name.
        relation: String,
        /// The tuple (its length fixes the arity on first insert).
        values: Vec<Val>,
    },
    /// Open a bulk-load block (rows until `END`).
    Load {
        /// Relation name.
        relation: String,
        /// Expected number of columns per row.
        cols: usize,
    },
    /// Evaluate a query under a task.
    Query {
        /// Which task to run (never [`Task::Access`] — that is
        /// EXPLAIN-only).
        task: Task,
        /// Raw query text.
        src: String,
    },
    /// Plan and render without executing.
    Explain {
        /// Task to plan for (may be [`Task::Access`]).
        task: Task,
        /// Raw query text.
        src: String,
    },
    /// Plan, render, execute under a trace, and report measured
    /// per-operator spans alongside the plan.
    ExplainAnalyze {
        /// Task to run (never [`Task::Access`] — there is nothing to
        /// execute for a bare access structure).
        task: Task,
        /// Raw query text.
        src: String,
    },
    /// Open a streaming cursor over a query's answers; the reply is
    /// `OK cursor <id>`.
    Cursor {
        /// [`Task::Answers`] (`CURSOR ANSWERS`, constant-delay or
        /// materialized stream) or [`Task::Access`] (`CURSOR ACCESS`,
        /// direct-access stream with O(1) `SEEK`).
        task: Task,
        /// Raw query text.
        src: String,
    },
    /// Pull up to `n` rows from an open cursor.
    Fetch {
        /// Cursor id from `OK cursor <id>`.
        id: u64,
        /// Maximum rows to return.
        n: u64,
    },
    /// Position a cursor at the k-th answer (0-based); `ERR
    /// unsupported` when the plan has no random access.
    SeekCursor {
        /// Cursor id.
        id: u64,
        /// Target answer index.
        k: u64,
    },
    /// Release a cursor.
    CloseCursor {
        /// Cursor id.
        id: u64,
    },
    /// Open a batch block (items until `END`).
    Batch,
    /// Checkpoint the current tenant (snapshot + WAL truncation);
    /// refused on an in-memory server.
    Save,
    /// Delete a tenant database (registry and, when persistent, disk).
    DropDb(String),
    /// Delete one relation of the current tenant.
    DropRelation(String),
    /// Server statistics, or detailed statistics for one tenant.
    Stats {
        /// `STATS <name>`: the tenant to detail; bare `STATS` is the
        /// server-wide summary.
        db: Option<String>,
    },
    /// Dump the metrics registry, or one tenant's scope.
    Metrics {
        /// `METRICS <name>`: limit to that tenant's scope; bare
        /// `METRICS` renders every scope.
        db: Option<String>,
    },
    /// Windowed counter rates from the metrics history ring (also
    /// captures a fresh snapshot into the ring first).
    MetricsRate {
        /// `METRICS RATE <name> …`: limit to that tenant's scope.
        db: Option<String>,
        /// `METRICS RATE … <window-s>`: how far back (in seconds) the
        /// baseline snapshot may lie; `None` spans the whole ring.
        window_s: Option<u64>,
    },
    /// A tenant's recent query traces (`ERR tracing-off` unless the
    /// server was started with `--profile N`).
    Profile {
        /// The tenant whose trace ring to dump.
        db: String,
    },
    /// Set (or clear) a tenant's admission-control budget.
    SetBudget {
        /// The tenant whose budget changes.
        db: String,
        /// Which cap, and its value.
        setting: BudgetSetting,
    },
    /// Set (or clear) a tenant's per-query evaluation deadline.
    SetTimeout {
        /// The tenant whose deadline changes.
        db: String,
        /// Deadline in milliseconds; `None` clears it.
        ms: Option<u64>,
    },
    /// Restore a degraded (read-only) tenant to read-write by rolling
    /// a fresh WAL segment (checkpoint + log reset).
    Resume(String),
    /// Replication pull: bare `SHIP` lists every tenant's shippable
    /// position (`<name> <epoch> <wal-len>` lines); `SHIP <db> <epoch>
    /// <offset>` ships the next segment past the replica's position —
    /// WAL record bytes when the epoch matches the primary's live log,
    /// the whole snapshot otherwise.
    Ship {
        /// `None` for the bare listing form.
        db: Option<String>,
        /// The epoch the replica has applied through (listing: unused).
        epoch: u64,
        /// The WAL byte offset the replica has fetched through
        /// (listing: unused).
        offset: u64,
    },
    /// Close the session.
    Quit,
}

/// The value side of `SET BUDGET <db> …`.
#[derive(Clone, PartialEq, Debug)]
pub enum BudgetSetting {
    /// `MAX-EXPONENT <e>`: reject plans with cost exponent above `e`.
    MaxExponent(f64),
    /// `MAX-ROWS <n>`: reject plans whose estimated operation count
    /// (the AGM-style worst case `m^e`) exceeds `n`.
    MaxRows(u64),
    /// `NONE`: clear both caps.
    Clear,
}

impl fmt::Display for BudgetSetting {
    /// The wire spelling of the value side — what
    /// [`Client::set_budget`](crate::Client::set_budget) sends after
    /// `SET BUDGET <db> `.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BudgetSetting::MaxExponent(e) => write!(f, "MAX-EXPONENT {e}"),
            BudgetSetting::MaxRows(n) => write!(f, "MAX-ROWS {n}"),
            BudgetSetting::Clear => write!(f, "NONE"),
        }
    }
}

/// Parse a request line (already trimmed, non-empty).
pub fn parse_command(line: &str) -> Result<Command, Reply> {
    let (verb, rest) = split_word(line);
    let verb_uc = verb.to_ascii_uppercase();
    match verb_uc.as_str() {
        "PING" => expect_no_args(rest, Command::Ping),
        "CREATE" => {
            let (kw, name) = split_word(rest);
            if !kw.eq_ignore_ascii_case("DB") {
                return Err(Reply::err(ErrKind::Usage, "usage: CREATE DB <name>"));
            }
            Ok(Command::CreateDb(valid_db_name(name)?))
        }
        "USE" => Ok(Command::Use(valid_db_name(rest)?)),
        "INSERT" => parse_insert(rest),
        "LOAD" => {
            let (relation, cols_txt) = split_word(rest);
            if relation.is_empty() || cols_txt.is_empty() {
                return Err(Reply::err(ErrKind::Usage, "usage: LOAD <rel> <n-cols>"));
            }
            let cols: usize = cols_txt.trim().parse().map_err(|_| {
                Reply::err(
                    ErrKind::Usage,
                    format!(
                        "LOAD column count must be a number, got `{}`",
                        cols_txt.trim()
                    ),
                )
            })?;
            Ok(Command::Load { relation: valid_relation_name(relation)?, cols })
        }
        "DECIDE" | "COUNT" | "ANSWERS" => {
            let task = query_task(&verb_uc).expect("verb matched above");
            if rest.is_empty() {
                return Err(Reply::err(
                    ErrKind::Usage,
                    format!("usage: {verb_uc} <query>"),
                ));
            }
            Ok(Command::Query { task, src: rest.to_string() })
        }
        "EXPLAIN" => {
            let (task_txt, src) = split_word(rest);
            if task_txt.eq_ignore_ascii_case("ANALYZE") {
                let (task_txt, src) = split_word(src);
                let task =
                    query_task(&task_txt.to_ascii_uppercase()).ok_or_else(|| {
                        Reply::err(
                            ErrKind::Usage,
                            "usage: EXPLAIN ANALYZE DECIDE|COUNT|ANSWERS <query>",
                        )
                    })?;
                if src.is_empty() {
                    return Err(Reply::err(
                        ErrKind::Usage,
                        "EXPLAIN ANALYZE needs a query",
                    ));
                }
                return Ok(Command::ExplainAnalyze { task, src: src.to_string() });
            }
            let task = explain_task(task_txt).ok_or_else(|| {
                Reply::err(
                    ErrKind::Usage,
                    "usage: EXPLAIN [ANALYZE] DECIDE|COUNT|ANSWERS|ACCESS <query>",
                )
            })?;
            if src.is_empty() {
                return Err(Reply::err(ErrKind::Usage, "EXPLAIN needs a query"));
            }
            Ok(Command::Explain { task, src: src.to_string() })
        }
        "CURSOR" => {
            const USAGE: &str = "usage: CURSOR ANSWERS|ACCESS <query>";
            let (task_txt, src) = split_word(rest);
            let task = match task_txt.to_ascii_uppercase().as_str() {
                "ANSWERS" => Task::Answers,
                "ACCESS" => Task::Access,
                _ => return Err(Reply::err(ErrKind::Usage, USAGE)),
            };
            if src.is_empty() {
                return Err(Reply::err(ErrKind::Usage, USAGE));
            }
            Ok(Command::Cursor { task, src: src.to_string() })
        }
        "FETCH" => {
            let (id, n) = parse_two_u64(rest, "usage: FETCH <cursor-id> <n-rows>")?;
            Ok(Command::Fetch { id, n })
        }
        "SEEK" => {
            let (id, k) = parse_two_u64(rest, "usage: SEEK <cursor-id> <answer-index>")?;
            Ok(Command::SeekCursor { id, k })
        }
        "CLOSE" => {
            let id = rest
                .trim()
                .parse::<u64>()
                .map_err(|_| Reply::err(ErrKind::Usage, "usage: CLOSE <cursor-id>"))?;
            Ok(Command::CloseCursor { id })
        }
        "BATCH" => expect_no_args(rest, Command::Batch),
        "SAVE" => expect_no_args(rest, Command::Save),
        "DROP" => {
            let (first, more) = split_word(rest);
            if first.eq_ignore_ascii_case("DB") {
                if more.is_empty() {
                    return Err(Reply::err(ErrKind::Usage, "usage: DROP DB <name>"));
                }
                Ok(Command::DropDb(valid_db_name(more)?))
            } else if first.is_empty() {
                Err(Reply::err(ErrKind::Usage, "usage: DROP DB <name> | DROP <rel>"))
            } else if !more.is_empty() {
                Err(Reply::err(ErrKind::Usage, format!("unexpected arguments `{more}`")))
            } else {
                // `DB` wins the grammar race: a relation literally
                // named DB/db cannot be dropped over the wire
                Ok(Command::DropRelation(valid_relation_name(first)?))
            }
        }
        "STATS" => {
            if rest.is_empty() {
                Ok(Command::Stats { db: None })
            } else {
                Ok(Command::Stats { db: Some(valid_db_name(rest)?) })
            }
        }
        "METRICS" => {
            let (first, more) = split_word(rest);
            if first.eq_ignore_ascii_case("RATE") {
                return parse_metrics_rate(more);
            }
            if rest.is_empty() {
                Ok(Command::Metrics { db: None })
            } else {
                Ok(Command::Metrics { db: Some(valid_db_name(rest)?) })
            }
        }
        "PROFILE" => Ok(Command::Profile { db: valid_db_name(rest)? }),
        "SET" => parse_set(rest),
        "SHIP" => {
            if rest.is_empty() {
                return Ok(Command::Ship { db: None, epoch: 0, offset: 0 });
            }
            let (name, pos) = split_word(rest);
            let db = valid_db_name(name)?;
            let (epoch, offset) =
                parse_two_u64(pos, "usage: SHIP | SHIP <db> <epoch> <offset>")?;
            Ok(Command::Ship { db: Some(db), epoch, offset })
        }
        "RESUME" => Ok(Command::Resume(valid_db_name(rest)?)),
        "QUIT" => expect_no_args(rest, Command::Quit),
        _ => Err(Reply::err(ErrKind::UnknownCommand, format!("`{verb}`"))),
    }
}

/// The task behind a `DECIDE`/`COUNT`/`ANSWERS` verb (upper-cased), also
/// used for `BATCH` item lines.
pub fn query_task(verb_uc: &str) -> Option<Task> {
    match verb_uc {
        "DECIDE" => Some(Task::Decide),
        "COUNT" => Some(Task::Count),
        "ANSWERS" => Some(Task::Answers),
        _ => None,
    }
}

fn explain_task(word: &str) -> Option<Task> {
    let uc = word.to_ascii_uppercase();
    query_task(&uc).or(if uc == "ACCESS" { Some(Task::Access) } else { None })
}

/// Parse the tail of `METRICS RATE [<name>] [<window-s>]`. A single
/// argument that parses as a number is a window; otherwise it is a
/// tenant name (tenant names never start with a digit — see
/// [`valid_db_name`]'s identifier rule — so the forms cannot collide).
fn parse_metrics_rate(rest: &str) -> Result<Command, Reply> {
    const USAGE: &str = "usage: METRICS RATE [<name>] [<window-s>]";
    if rest.is_empty() {
        return Ok(Command::MetricsRate { db: None, window_s: None });
    }
    let (first, more) = split_word(rest);
    if let Ok(w) = first.parse::<u64>() {
        return expect_no_args(
            more,
            Command::MetricsRate { db: None, window_s: Some(w) },
        );
    }
    let db = valid_db_name(first)?;
    if more.is_empty() {
        return Ok(Command::MetricsRate { db: Some(db), window_s: None });
    }
    let w = more.trim().parse::<u64>().map_err(|_| Reply::err(ErrKind::Usage, USAGE))?;
    Ok(Command::MetricsRate { db: Some(db), window_s: Some(w) })
}

/// Parse exactly two u64 arguments (for `FETCH`/`SEEK`).
fn parse_two_u64(rest: &str, usage: &str) -> Result<(u64, u64), Reply> {
    let (a, b) = split_word(rest);
    let (Ok(a), Ok(b)) = (a.parse::<u64>(), b.trim().parse::<u64>()) else {
        return Err(Reply::err(ErrKind::Usage, usage));
    };
    Ok((a, b))
}

fn expect_no_args(rest: &str, cmd: Command) -> Result<Command, Reply> {
    if rest.is_empty() {
        Ok(cmd)
    } else {
        Err(Reply::err(ErrKind::Usage, format!("unexpected arguments `{rest}`")))
    }
}

/// Split off the first whitespace-delimited word; both halves trimmed.
fn split_word(s: &str) -> (&str, &str) {
    let s = s.trim();
    match s.find(char::is_whitespace) {
        Some(i) => (&s[..i], s[i..].trim_start()),
        None => (s, ""),
    }
}

fn is_ident(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 64
        && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
}

fn valid_db_name(name: &str) -> Result<String, Reply> {
    let name = name.trim();
    if is_ident(name) {
        Ok(name.to_string())
    } else {
        Err(Reply::err(
            ErrKind::BadName,
            format!("database names are [A-Za-z0-9_]{{1,64}}, got `{name}`"),
        ))
    }
}

/// Relation names must be query-grammar identifiers, or the inserted
/// data could never be referenced by any query.
fn valid_relation_name(name: &str) -> Result<String, Reply> {
    let name = name.trim();
    if is_ident(name) {
        Ok(name.to_string())
    } else {
        Err(Reply::err(
            ErrKind::BadName,
            format!("relation names are [A-Za-z0-9_]{{1,64}}, got `{name}`"),
        ))
    }
}

/// Parse the tail of a `SET …` command (the leading `SET` is already
/// consumed): `SET BUDGET <db> …` or `SET TIMEOUT <db> <ms>|NONE`.
fn parse_set(rest: &str) -> Result<Command, Reply> {
    let (kw, rest) = split_word(rest);
    if kw.eq_ignore_ascii_case("BUDGET") {
        parse_set_budget(rest)
    } else if kw.eq_ignore_ascii_case("TIMEOUT") {
        parse_set_timeout(rest)
    } else {
        Err(Reply::err(
            ErrKind::Usage,
            "usage: SET BUDGET <db> … | SET TIMEOUT <db> <ms>|NONE",
        ))
    }
}

/// Parse the tail of `SET TIMEOUT <db> <ms> | NONE`.
fn parse_set_timeout(rest: &str) -> Result<Command, Reply> {
    const USAGE: &str = "usage: SET TIMEOUT <db> <ms> | NONE";
    let (name, value) = split_word(rest);
    if name.is_empty() || value.is_empty() {
        return Err(Reply::err(ErrKind::Usage, USAGE));
    }
    let db = valid_db_name(name)?;
    let ms = if value.eq_ignore_ascii_case("NONE") {
        None
    } else {
        Some(value.parse::<u64>().map_err(|_| {
            Reply::err(
                ErrKind::Usage,
                format!("SET TIMEOUT takes milliseconds (a u64) or NONE, got `{value}`"),
            )
        })?)
    };
    Ok(Command::SetTimeout { db, ms })
}

/// Parse the tail of `SET BUDGET <db> MAX-EXPONENT <e> | MAX-ROWS <n>
/// | NONE` (the leading `SET BUDGET` is already consumed).
fn parse_set_budget(rest: &str) -> Result<Command, Reply> {
    const USAGE: &str = "usage: SET BUDGET <db> MAX-EXPONENT <e> | MAX-ROWS <n> | NONE";
    let usage = || Reply::err(ErrKind::Usage, USAGE);
    let (name, rest) = split_word(rest);
    if name.is_empty() {
        return Err(usage());
    }
    let db = valid_db_name(name)?;
    let (which, value) = split_word(rest);
    let setting = match which.to_ascii_uppercase().as_str() {
        "NONE" if value.is_empty() => BudgetSetting::Clear,
        "MAX-EXPONENT" => {
            let e: f64 = value.parse().map_err(|_| {
                Reply::err(
                    ErrKind::Usage,
                    format!("MAX-EXPONENT takes a number, got `{value}`"),
                )
            })?;
            if !e.is_finite() || e < 0.0 {
                return Err(Reply::err(
                    ErrKind::Usage,
                    format!(
                        "MAX-EXPONENT must be finite and non-negative, got `{value}`"
                    ),
                ));
            }
            BudgetSetting::MaxExponent(e)
        }
        "MAX-ROWS" => {
            let n: u64 = value.parse().map_err(|_| {
                Reply::err(ErrKind::Usage, format!("MAX-ROWS takes a u64, got `{value}`"))
            })?;
            BudgetSetting::MaxRows(n)
        }
        _ => return Err(usage()),
    };
    Ok(Command::SetBudget { db, setting })
}

fn parse_insert(rest: &str) -> Result<Command, Reply> {
    let usage = || Reply::err(ErrKind::Usage, "usage: INSERT <rel>(<v>, <v>, ...)");
    let rest = rest.trim();
    let open = rest.find('(').ok_or_else(usage)?;
    if !rest.ends_with(')') {
        return Err(usage());
    }
    let relation = valid_relation_name(&rest[..open])?;
    let inner = &rest[open + 1..rest.len() - 1];
    let values = parse_row(inner)
        .map_err(|bad| Reply::err(ErrKind::BadValue, format!("`{bad}` is not a u64")))?;
    Ok(Command::Insert { relation, values })
}

/// Parse one row of values separated by whitespace and/or commas.
/// Returns the offending token on failure.
pub fn parse_row(line: &str) -> Result<Vec<Val>, String> {
    line.split(|c: char| c == ',' || c.is_whitespace())
        .filter(|t| !t.is_empty())
        .map(|t| t.parse::<Val>().map_err(|_| t.to_string()))
        .collect()
}

/// Encode bytes as lowercase hex for `SHIP` data lines (the wire is
/// line-based text; raw WAL/snapshot bytes must not contain newlines).
pub fn hex_encode(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        use std::fmt::Write as _;
        write!(s, "{b:02x}").expect("writing to a String cannot fail");
    }
    s
}

/// Decode a `SHIP` hex data line back to bytes. Returns the offending
/// character on failure.
pub fn hex_decode(s: &str) -> Result<Vec<u8>, String> {
    let s = s.trim();
    if !s.len().is_multiple_of(2) {
        return Err("odd-length hex line".to_string());
    }
    let digits = s.as_bytes();
    let mut out = Vec::with_capacity(digits.len() / 2);
    for pair in digits.chunks_exact(2) {
        let hi = (pair[0] as char).to_digit(16);
        let lo = (pair[1] as char).to_digit(16);
        match (hi, lo) {
            (Some(hi), Some(lo)) => out.push((hi * 16 + lo) as u8),
            _ => return Err(format!("`{}` is not hex", String::from_utf8_lossy(pair))),
        }
    }
    Ok(out)
}

/// Render one answer row for the wire: values space-separated, the
/// empty (nullary) row as `()`.
pub fn render_row(row: &[Val]) -> String {
    if row.is_empty() {
        "()".to_string()
    } else {
        row.iter().map(Val::to_string).collect::<Vec<_>>().join(" ")
    }
}

/// Render an answer relation as wire data lines, rows in the
/// relation's order. `ANSWERS` streams rows in the *plan's*
/// deterministic order (enumeration / direct-access order), so tests
/// compare a sorted copy of the server payload against this rendering
/// of normalized `eval::answers` results — same set, byte-for-byte,
/// modulo order.
pub fn render_rows(rel: &Relation) -> Vec<String> {
    rel.iter().map(render_row).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verbs_parse_case_insensitively() {
        assert_eq!(parse_command("ping").unwrap(), Command::Ping);
        assert_eq!(parse_command("PING").unwrap(), Command::Ping);
        assert_eq!(
            parse_command("create db t1").unwrap(),
            Command::CreateDb("t1".into())
        );
        assert_eq!(parse_command("USE t1").unwrap(), Command::Use("t1".into()));
        assert_eq!(
            parse_command("LOAD Edge 2").unwrap(),
            Command::Load { relation: "Edge".into(), cols: 2 }
        );
        assert_eq!(parse_command("batch").unwrap(), Command::Batch);
        assert_eq!(parse_command("STATS").unwrap(), Command::Stats { db: None });
        assert_eq!(parse_command("save").unwrap(), Command::Save);
        assert_eq!(parse_command("quit").unwrap(), Command::Quit);
    }

    #[test]
    fn cursor_commands_parse() {
        assert_eq!(
            parse_command("CURSOR ANSWERS q(x) :- R(x)").unwrap(),
            Command::Cursor { task: Task::Answers, src: "q(x) :- R(x)".into() }
        );
        assert_eq!(
            parse_command("cursor access q(x) :- R(x)").unwrap(),
            Command::Cursor { task: Task::Access, src: "q(x) :- R(x)".into() }
        );
        assert_eq!(
            parse_command("FETCH 3 100").unwrap(),
            Command::Fetch { id: 3, n: 100 }
        );
        assert_eq!(
            parse_command("seek 3 7").unwrap(),
            Command::SeekCursor { id: 3, k: 7 }
        );
        assert_eq!(parse_command("CLOSE 3").unwrap(), Command::CloseCursor { id: 3 });
        // malformed variants are usage errors
        for bad in [
            "CURSOR",
            "CURSOR COUNT q(x) :- R(x)",
            "CURSOR ANSWERS",
            "FETCH 3",
            "FETCH x 10",
            "SEEK 3",
            "CLOSE",
            "CLOSE x",
        ] {
            let e = parse_command(bad).unwrap_err();
            assert!(e.terminal.starts_with("ERR usage:"), "{bad}: {}", e.terminal);
        }
    }

    #[test]
    fn explain_analyze_and_observability_verbs_parse() {
        assert_eq!(
            parse_command("EXPLAIN ANALYZE COUNT q() :- R(x)").unwrap(),
            Command::ExplainAnalyze { task: Task::Count, src: "q() :- R(x)".into() }
        );
        assert_eq!(
            parse_command("explain analyze answers q(x) :- R(x)").unwrap(),
            Command::ExplainAnalyze { task: Task::Answers, src: "q(x) :- R(x)".into() }
        );
        assert_eq!(
            parse_command("PROFILE t1").unwrap(),
            Command::Profile { db: "t1".into() }
        );
        assert_eq!(
            parse_command("METRICS RATE").unwrap(),
            Command::MetricsRate { db: None, window_s: None }
        );
        assert_eq!(
            parse_command("metrics rate 60").unwrap(),
            Command::MetricsRate { db: None, window_s: Some(60) }
        );
        assert_eq!(
            parse_command("METRICS RATE t1").unwrap(),
            Command::MetricsRate { db: Some("t1".into()), window_s: None }
        );
        assert_eq!(
            parse_command("METRICS RATE t1 60").unwrap(),
            Command::MetricsRate { db: Some("t1".into()), window_s: Some(60) }
        );
        // plain METRICS forms still parse
        assert_eq!(parse_command("METRICS").unwrap(), Command::Metrics { db: None });
        assert_eq!(
            parse_command("METRICS t1").unwrap(),
            Command::Metrics { db: Some("t1".into()) }
        );
        for bad in [
            "EXPLAIN ANALYZE",
            "EXPLAIN ANALYZE ACCESS q(x) :- R(x)", // nothing to execute
            "EXPLAIN ANALYZE COUNT",
            "PROFILE",
            "METRICS RATE 60 extra",
            "METRICS RATE t1 sixty",
        ] {
            let e = parse_command(bad).unwrap_err();
            assert!(
                e.terminal.starts_with("ERR usage")
                    || e.terminal.starts_with("ERR bad-name"),
                "{bad}: {}",
                e.terminal
            );
        }
    }

    #[test]
    fn drop_and_stats_variants_parse() {
        assert_eq!(parse_command("DROP DB t1").unwrap(), Command::DropDb("t1".into()));
        assert_eq!(parse_command("drop db t1").unwrap(), Command::DropDb("t1".into()));
        assert_eq!(
            parse_command("DROP Edge").unwrap(),
            Command::DropRelation("Edge".into())
        );
        assert_eq!(
            parse_command("STATS t1").unwrap(),
            Command::Stats { db: Some("t1".into()) }
        );
        for bad in ["DROP", "DROP DB", "DROP Edge extra", "DROP my-rel", "STATS sp ace"] {
            let e = parse_command(bad).unwrap_err();
            assert!(
                e.terminal.starts_with("ERR usage")
                    || e.terminal.starts_with("ERR bad-name"),
                "{bad}: {}",
                e.terminal
            );
        }
        assert!(parse_command("SAVE now").is_err());
    }

    #[test]
    fn insert_parses_tuples() {
        assert_eq!(
            parse_command("INSERT R(1, 2)").unwrap(),
            Command::Insert { relation: "R".into(), values: vec![1, 2] }
        );
        // nullary insert: the empty tuple (a Boolean fact)
        assert_eq!(
            parse_command("INSERT T()").unwrap(),
            Command::Insert { relation: "T".into(), values: vec![] }
        );
        let e = parse_command("INSERT R(1, x)").unwrap_err();
        assert!(e.terminal.starts_with("ERR bad-value"), "{}", e.terminal);
        let e = parse_command("INSERT R 1 2").unwrap_err();
        assert!(e.terminal.starts_with("ERR usage"), "{}", e.terminal);
    }

    #[test]
    fn query_verbs_carry_tasks() {
        match parse_command("DECIDE q() :- R(x)").unwrap() {
            Command::Query { task: Task::Decide, src } => {
                assert_eq!(src, "q() :- R(x)");
            }
            other => panic!("{other:?}"),
        }
        match parse_command("EXPLAIN access q(x) :- R(x)").unwrap() {
            Command::Explain { task: Task::Access, .. } => {}
            other => panic!("{other:?}"),
        }
        assert!(parse_command("EXPLAIN sideways q(x) :- R(x)").is_err());
        assert!(parse_command("COUNT").is_err());
    }

    #[test]
    fn db_names_validated() {
        assert!(parse_command("CREATE DB ok_name_9").is_ok());
        for bad in ["CREATE DB", "CREATE DB sp ace", "CREATE DB dash-y", "USE q(x)"] {
            let e = parse_command(bad).unwrap_err();
            assert!(
                e.terminal.starts_with("ERR bad-name")
                    || e.terminal.starts_with("ERR usage"),
                "{bad}: {}",
                e.terminal
            );
        }
    }

    #[test]
    fn relation_names_are_query_grammar_idents() {
        // a relation the query parser can never reference must be
        // rejected at insert time, not stored unqueryably
        for bad in ["INSERT my-rel(1, 2)", "INSERT (1)", "LOAD my-rel 2", "LOAD r:s 2"] {
            let e = parse_command(bad).unwrap_err();
            assert!(e.terminal.starts_with("ERR bad-name"), "{bad}: {}", e.terminal);
        }
        assert!(parse_command("INSERT r_9(1)").is_ok());
        assert!(parse_command("LOAD r_9 1").is_ok());
    }

    #[test]
    fn metrics_and_budget_parse() {
        assert_eq!(parse_command("METRICS").unwrap(), Command::Metrics { db: None });
        assert_eq!(
            parse_command("metrics t1").unwrap(),
            Command::Metrics { db: Some("t1".into()) }
        );
        assert_eq!(
            parse_command("SET BUDGET t1 MAX-EXPONENT 1.4").unwrap(),
            Command::SetBudget {
                db: "t1".into(),
                setting: BudgetSetting::MaxExponent(1.4)
            }
        );
        assert_eq!(
            parse_command("set budget t1 max-rows 1000").unwrap(),
            Command::SetBudget { db: "t1".into(), setting: BudgetSetting::MaxRows(1000) }
        );
        assert_eq!(
            parse_command("SET BUDGET t1 NONE").unwrap(),
            Command::SetBudget { db: "t1".into(), setting: BudgetSetting::Clear }
        );
        for bad in [
            "SET",
            "SET BUDGET",
            "SET BUDGET t1",
            "SET BUDGET t1 MAX-EXPONENT",
            "SET BUDGET t1 MAX-EXPONENT x",
            "SET BUDGET t1 MAX-EXPONENT -1",
            "SET BUDGET t1 MAX-EXPONENT inf",
            "SET BUDGET t1 MAX-ROWS 1.5",
            "SET BUDGET t1 NONE extra",
            "SET SPEED t1 FAST",
            "METRICS sp ace",
        ] {
            let e = parse_command(bad).unwrap_err();
            assert!(
                e.terminal.starts_with("ERR usage")
                    || e.terminal.starts_with("ERR bad-name"),
                "{bad}: {}",
                e.terminal
            );
        }
    }

    #[test]
    fn timeout_and_resume_parse() {
        assert_eq!(
            parse_command("SET TIMEOUT t1 250").unwrap(),
            Command::SetTimeout { db: "t1".into(), ms: Some(250) }
        );
        assert_eq!(
            parse_command("set timeout t1 none").unwrap(),
            Command::SetTimeout { db: "t1".into(), ms: None }
        );
        assert_eq!(
            parse_command("SET TIMEOUT t1 0").unwrap(),
            Command::SetTimeout { db: "t1".into(), ms: Some(0) }
        );
        assert_eq!(parse_command("RESUME t1").unwrap(), Command::Resume("t1".into()));
        assert_eq!(parse_command("resume t1").unwrap(), Command::Resume("t1".into()));
        for bad in [
            "SET TIMEOUT",
            "SET TIMEOUT t1",
            "SET TIMEOUT t1 fast",
            "SET TIMEOUT t1 -5",
            "SET TIMEOUT t1 1.5",
            "SET SPEED t1 FAST",
            "RESUME",
            "RESUME sp ace",
        ] {
            let e = parse_command(bad).unwrap_err();
            assert!(
                e.terminal.starts_with("ERR usage")
                    || e.terminal.starts_with("ERR bad-name"),
                "{bad}: {}",
                e.terminal
            );
        }
    }

    #[test]
    fn unknown_verb_is_structured() {
        let e = parse_command("EXPLODE now").unwrap_err();
        assert_eq!(e.terminal, "ERR unknown-command: `EXPLODE`");
    }

    #[test]
    fn rows_and_rendering() {
        assert_eq!(parse_row("1, 2 3,4").unwrap(), vec![1, 2, 3, 4]);
        assert_eq!(parse_row("").unwrap(), Vec::<Val>::new());
        assert_eq!(parse_row("5 nope").unwrap_err(), "nope");
        assert_eq!(render_row(&[7, 1]), "7 1");
        assert_eq!(render_row(&[]), "()");
        let rel = Relation::from_pairs(vec![(2, 1), (1, 9)]);
        assert_eq!(render_rows(&rel), vec!["1 9", "2 1"]);
    }

    #[test]
    fn ship_parses_both_forms() {
        assert_eq!(
            parse_command("SHIP").unwrap(),
            Command::Ship { db: None, epoch: 0, offset: 0 }
        );
        assert_eq!(
            parse_command("ship social 3 4096").unwrap(),
            Command::Ship { db: Some("social".into()), epoch: 3, offset: 4096 }
        );
        let e = parse_command("SHIP social 3").unwrap_err();
        assert_eq!(e.err_kind(), Some(ErrKind::Usage));
        let e = parse_command("SHIP social three 4096").unwrap_err();
        assert_eq!(e.err_kind(), Some(ErrKind::Usage));
        let e = parse_command("SHIP ../evil 0 0").unwrap_err();
        assert_eq!(e.err_kind(), Some(ErrKind::BadName));
    }

    #[test]
    fn hex_roundtrips_arbitrary_segment_bytes() {
        let bytes: Vec<u8> = (0..=255u8).collect();
        let line = hex_encode(&bytes);
        assert!(line.bytes().all(|b| b.is_ascii_hexdigit()));
        assert_eq!(hex_decode(&line).unwrap(), bytes);
        assert_eq!(hex_decode("").unwrap(), Vec::<u8>::new());
        assert!(hex_decode("abc").is_err(), "odd length must refuse");
        assert!(hex_decode("zz").is_err(), "non-hex must refuse");
    }

    #[test]
    fn err_kinds_roundtrip_the_shared_vocabulary() {
        for kind in ALL_ERR_KINDS {
            assert_eq!(ErrKind::parse(kind.as_str()), Some(kind));
            let reply = Reply::err(kind, "detail");
            assert_eq!(reply.err_kind(), Some(kind), "{}", reply.terminal);
        }
        assert_eq!(ErrKind::parse("not-a-kind"), None);
        // free-text ERR terminals (pre-typed or foreign) degrade to None
        let untyped = Reply { data: vec![], terminal: "ERR something odd".into() };
        assert_eq!(untyped.err_kind(), None);
    }

    #[test]
    fn reply_roundtrips_through_wire_form() {
        let r = Reply::ok_with(vec!["1 2".into(), "3 4".into()], "2 rows");
        let mut buf = Vec::new();
        r.write_to(&mut buf).unwrap();
        assert_eq!(String::from_utf8(buf).unwrap(), "* 1 2\n* 3 4\nOK 2 rows\n");
        assert!(r.is_ok());
        assert_eq!(r.ok_info(), Some("2 rows"));
        let e = Reply::err(ErrKind::NoDb, "USE a database first");
        assert!(!e.is_ok());
        assert_eq!(e.terminal, "ERR no-db: USE a database first");
    }
}
