//! A small blocking client for the wire protocol, used by `cqsh`, the
//! integration tests, and anyone driving `cqd` from Rust.

use crate::protocol::{BudgetSetting, Reply, DATA_PREFIX, END_KEYWORD};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A connection to a `cqd` server.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connect to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client { reader, writer: stream })
    }

    /// Connect, retrying for up to `timeout` — for scripts racing a
    /// just-booted server.
    pub fn connect_with_retry(
        addr: impl ToSocketAddrs + Clone,
        timeout: Duration,
    ) -> std::io::Result<Client> {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            match Client::connect(addr.clone()) {
                Ok(c) => return Ok(c),
                Err(e) if std::time::Instant::now() >= deadline => return Err(e),
                Err(_) => std::thread::sleep(Duration::from_millis(50)),
            }
        }
    }

    /// Send one raw request line (no newline) without reading a reply —
    /// for rows/items inside `LOAD`/`BATCH` blocks, which the server
    /// consumes silently.
    pub fn send_line(&mut self, line: &str) -> std::io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()
    }

    /// Read one framed reply: data lines until the `OK`/`ERR` terminal.
    pub fn read_reply(&mut self) -> std::io::Result<Reply> {
        let mut data = Vec::new();
        loop {
            let mut line = String::new();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed mid-reply",
                ));
            }
            let line = line.trim_end_matches(['\n', '\r']);
            if let Some(d) = line.strip_prefix(DATA_PREFIX) {
                data.push(d.to_string());
            } else if line.starts_with("OK") || line.starts_with("ERR") {
                return Ok(Reply { data, terminal: line.to_string() });
            } else {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("protocol violation: unexpected line `{line}`"),
                ));
            }
        }
    }

    /// Send one command and read its reply.
    pub fn request(&mut self, line: &str) -> std::io::Result<Reply> {
        self.send_line(line)?;
        self.read_reply()
    }

    /// Bulk-load rows into a relation: `LOAD` block with one row per
    /// slice. Returns the completion reply (the open-ack is consumed).
    pub fn load(
        &mut self,
        relation: &str,
        cols: usize,
        rows: impl IntoIterator<Item = impl AsRef<str>>,
    ) -> std::io::Result<Reply> {
        let ack = self.request(&format!("LOAD {relation} {cols}"))?;
        if !ack.is_ok() {
            return Ok(ack); // block never opened; no END expected
        }
        for row in rows {
            self.send_line(row.as_ref())?;
        }
        self.request(END_KEYWORD)
    }

    /// Run a `BATCH` block of `DECIDE|COUNT|ANSWERS <query>` items.
    /// Returns the completion reply with one data line per item.
    pub fn batch(
        &mut self,
        items: impl IntoIterator<Item = impl AsRef<str>>,
    ) -> std::io::Result<Reply> {
        let ack = self.request("BATCH")?;
        if !ack.is_ok() {
            return Ok(ack);
        }
        for item in items {
            self.send_line(item.as_ref())?;
        }
        self.request(END_KEYWORD)
    }

    /// Open a streaming cursor: `CURSOR ANSWERS|ACCESS <query>`.
    /// Returns the cursor id from `OK cursor <id>`, or the server's
    /// error reply.
    pub fn cursor(
        &mut self,
        task: &str,
        query: &str,
    ) -> std::io::Result<Result<u64, Reply>> {
        let reply = self.request(&format!("CURSOR {task} {query}"))?;
        let id = reply
            .ok_info()
            .and_then(|info| info.strip_prefix("cursor "))
            .and_then(|id| id.trim().parse::<u64>().ok());
        Ok(match id {
            Some(id) => Ok(id),
            None => Err(reply),
        })
    }

    /// Pull up to `n` rows from a cursor. Returns the rows and whether
    /// the stream is exhausted (`OK <k> rows eof`), or the server's
    /// error reply (stale cursor, timeout, …).
    pub fn fetch(
        &mut self,
        id: u64,
        n: u64,
    ) -> std::io::Result<Result<(Vec<String>, bool), Reply>> {
        let reply = self.request(&format!("FETCH {id} {n}"))?;
        Ok(if reply.is_ok() {
            let eof = reply.ok_info().is_some_and(|i| i.ends_with(" rows eof"));
            Ok((reply.data, eof))
        } else {
            Err(reply)
        })
    }

    /// Position a cursor at the k-th answer: `SEEK <id> <k>`.
    pub fn seek(&mut self, id: u64, k: u64) -> std::io::Result<Reply> {
        self.request(&format!("SEEK {id} {k}"))
    }

    /// Release a cursor: `CLOSE <id>`.
    pub fn close_cursor(&mut self, id: u64) -> std::io::Result<Reply> {
        self.request(&format!("CLOSE {id}"))
    }

    /// Drain a cursor to completion in pages of `page` rows, invoking
    /// `on_page` per page — constant client memory no matter the
    /// result size. Returns the total row count, or the server's error
    /// reply if a page fails mid-iteration.
    ///
    /// The cursor is closed on every exit path — exhaustion, a
    /// server-side error reply, and an `on_page` panic (the panic
    /// resumes after the `CLOSE`) — so a session never leaks cursor
    /// slots through this helper. Only an I/O error skips the close:
    /// the connection (and with it the server-side session registry)
    /// is gone anyway.
    pub fn for_each_page(
        &mut self,
        id: u64,
        page: u64,
        mut on_page: impl FnMut(&[String]),
    ) -> std::io::Result<Result<u64, Reply>> {
        let mut total = 0u64;
        loop {
            match self.fetch(id, page)? {
                Ok((rows, eof)) => {
                    total += rows.len() as u64;
                    let outcome =
                        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            on_page(&rows)
                        }));
                    if let Err(panic) = outcome {
                        let _ = self.close_cursor(id);
                        std::panic::resume_unwind(panic);
                    }
                    if eof {
                        self.close_cursor(id)?;
                        return Ok(Ok(total));
                    }
                }
                Err(reply) => {
                    // best-effort: the error may be the cursor itself
                    // being gone (stale, evicted), in which case the
                    // close's ERR is expected and ignored
                    let _ = self.close_cursor(id);
                    return Ok(Err(reply));
                }
            }
        }
    }

    // ---- typed admin surface ------------------------------------
    //
    // One method per admin verb, so callers never format raw request
    // lines (and never typo the grammar). Each returns the server's
    // framed reply; inspect `Reply::is_ok` / `Reply::err_kind` for the
    // typed outcome — the kinds are the same `ErrKind` enum the server
    // renders from, on both ends of the wire.

    /// Create a tenant: `CREATE DB <name>`.
    pub fn create_db(&mut self, db: &str) -> std::io::Result<Reply> {
        self.request(&format!("CREATE DB {db}"))
    }

    /// Select the session's tenant: `USE <name>`.
    pub fn use_db(&mut self, db: &str) -> std::io::Result<Reply> {
        self.request(&format!("USE {db}"))
    }

    /// Set or clear a tenant's admission-control budget:
    /// `SET BUDGET <db> MAX-EXPONENT <e> | MAX-ROWS <n> | NONE`.
    pub fn set_budget(
        &mut self,
        db: &str,
        setting: BudgetSetting,
    ) -> std::io::Result<Reply> {
        self.request(&format!("SET BUDGET {db} {setting}"))
    }

    /// Set (`Some(ms)`) or clear (`None`) a tenant's per-query
    /// deadline: `SET TIMEOUT <db> <ms>|NONE`.
    pub fn set_timeout(&mut self, db: &str, ms: Option<u64>) -> std::io::Result<Reply> {
        match ms {
            Some(ms) => self.request(&format!("SET TIMEOUT {db} {ms}")),
            None => self.request(&format!("SET TIMEOUT {db} NONE")),
        }
    }

    /// Checkpoint the session's tenant into a fresh snapshot: `SAVE`.
    pub fn save(&mut self) -> std::io::Result<Reply> {
        self.request("SAVE")
    }

    /// Repair a degraded (read-only) tenant: `RESUME <db>`.
    pub fn resume(&mut self, db: &str) -> std::io::Result<Reply> {
        self.request(&format!("RESUME {db}"))
    }

    /// Server or per-tenant statistics: `STATS [<db>]`. Data lines
    /// carry the report.
    pub fn stats(&mut self, db: Option<&str>) -> std::io::Result<Reply> {
        match db {
            Some(db) => self.request(&format!("STATS {db}")),
            None => self.request("STATS"),
        }
    }

    /// Dump the metrics registry: `METRICS [<db>]`. Data lines carry
    /// `scope metric value` triples.
    pub fn metrics(&mut self, db: Option<&str>) -> std::io::Result<Reply> {
        match db {
            Some(db) => self.request(&format!("METRICS {db}")),
            None => self.request("METRICS"),
        }
    }

    /// Windowed counter rates from the server's metrics history ring:
    /// `METRICS RATE [<db>] [<window-s>]`. The first call seeds the
    /// ring (`rate: n/a …` data line); later calls report
    /// `scope name rate=<v>/s` lines under a `window=…` header.
    pub fn metrics_rate(
        &mut self,
        db: Option<&str>,
        window_s: Option<u64>,
    ) -> std::io::Result<Reply> {
        let mut line = "METRICS RATE".to_string();
        if let Some(db) = db {
            line.push(' ');
            line.push_str(db);
        }
        if let Some(w) = window_s {
            line.push_str(&format!(" {w}"));
        }
        self.request(&line)
    }

    /// A tenant's retained query traces: `PROFILE <db>`. Answers
    /// `ERR tracing-off` unless the server runs with `--profile N`.
    pub fn profile(&mut self, db: &str) -> std::io::Result<Reply> {
        self.request(&format!("PROFILE {db}"))
    }

    /// Plan, execute, and measure a query: `EXPLAIN ANALYZE <task>
    /// <query>`. Data lines carry the plan rendering followed by the
    /// measured `analyze: …` section and the per-operator span tree.
    pub fn explain_analyze(&mut self, task: &str, query: &str) -> std::io::Result<Reply> {
        self.request(&format!("EXPLAIN ANALYZE {task} {query}"))
    }

    /// Say `QUIT` and close the connection.
    pub fn quit(mut self) -> std::io::Result<Reply> {
        self.request("QUIT")
    }
}
