//! Clique embeddings, executable (paper §4.2, Example 4.2/4.3, Fig. 1).
//!
//! Given the window embedding `ψ: K_k → C_k` (Example 4.2 for k = 5) and
//! a (weighted) graph `G`, build the database for the cycle join query
//! `q◦_k` whose answers are exactly the k-cliques of `G`:
//!
//! * the value of cycle variable `v_t` encodes the vertex choices of all
//!   clique vertices whose image contains `v_t` (base-n tuple encoding);
//! * the relation of atom `R_t(v_t, v_{t+1})` contains one tuple per
//!   choice of vertices for the clique vertices *touching* the atom's
//!   edge, restricted to pairwise-adjacent choices — so the relation has
//!   ≤ n^{wed(e)} tuples (n⁴ for Example 4.3);
//! * for the weighted variant each K_k-pair `{i, j}` is charged to
//!   exactly one atom that witnesses their touching, so the tropical
//!   (min,+) aggregate of the query equals the minimum-weight k-clique —
//!   transferring Min-Weight-k-Clique hardness (Hypothesis 7) to cycle
//!   aggregation at exponent `k / max wed = 5/4` for the 5-cycle.

use cq_core::embedding::{clique_into_cycle, CliqueEmbedding};
use cq_core::hypergraph::mask_vertices;
use cq_core::query::zoo;
use cq_core::ConjunctiveQuery;
use cq_data::{Database, FxHashMap, Relation, Val};
use cq_engine::aggregate::{aggregate_generic, Tropical, WeightFn};
use cq_problems::weighted_clique::WeightedGraph;

/// A built embedding instance.
pub struct CycleEmbeddingInstance {
    /// The cycle join query `q◦_k(v1..vk)`.
    pub query: ConjunctiveQuery,
    pub db: Database,
    /// Per atom: tuple → charged weight (sum of the atom's assigned
    /// clique-pair edge weights).
    pub weight_tables: Vec<FxHashMap<(Val, Val), i64>>,
    /// The embedding used.
    pub embedding: CliqueEmbedding,
}

/// Build the §4.2 database for the k-cycle (odd `k ≥ 3`) over a weighted
/// graph.
pub fn build(k: usize, g: &WeightedGraph) -> CycleEmbeddingInstance {
    let (h, emb) = clique_into_cycle(k);
    debug_assert!(emb.validate(&h).is_ok());
    let n = g.n();

    // touching sets per cycle edge t: clique vertices i with ψ(xᵢ) ∩ eₜ ≠ ∅
    let edges: Vec<u64> = h.edges().to_vec();
    let touching: Vec<Vec<usize>> = edges
        .iter()
        .map(|&e| (0..k).filter(|&i| emb.psi[i] & e != 0).collect())
        .collect();
    // images per cycle vertex t: clique vertices i with v_t ∈ ψ(xᵢ)
    let images: Vec<Vec<usize>> = (0..k)
        .map(|t| (0..k).filter(|&i| emb.psi[i] & (1u64 << t) != 0).collect())
        .collect();

    // charge each clique pair {i, j} to the first edge touching both
    let mut charged: Vec<Vec<(usize, usize)>> = vec![Vec::new(); edges.len()];
    for i in 0..k {
        for j in (i + 1)..k {
            let t = (0..edges.len())
                .find(|&t| touching[t].contains(&i) && touching[t].contains(&j))
                .expect("embedding property (2): every pair touches some edge");
            charged[t].push((i, j));
        }
    }

    let encode = |ids: &[usize], choice: &FxHashMap<usize, u32>| -> Val {
        ids.iter().fold(0u64, |acc, &i| acc * n as u64 + choice[&i] as u64)
    };

    let query = zoo::cycle_join(k);
    let mut db = Database::new();
    let mut weight_tables: Vec<FxHashMap<(Val, Val), i64>> =
        vec![FxHashMap::default(); edges.len()];

    for (t, tset) in touching.iter().enumerate() {
        // cycle edge t joins v_t and v_{(t+1) % k} by construction of
        // `clique_into_cycle` (edge masks are {t, t+1 mod k})
        let e = edges[t];
        let mut vs = mask_vertices(e);
        let a = vs.next().unwrap();
        let b = vs.next().unwrap();
        // orient: atom R_{t+1} in zoo::cycle_join has vars (v_{t}, v_{t+1});
        // edge mask {t, (t+1)%k} — identify which of (a, b) is v_t.
        let (first, second) = if (a + 1) % k == b { (a, b) } else { (b, a) };

        let mut rel = Relation::new(2);
        let mut choice: FxHashMap<usize, u32> = FxHashMap::default();
        // enumerate vertex choices for the touching set, requiring all
        // pairs adjacent
        let mut stack: Vec<u32> = vec![0; tset.len()];
        let mut depth = 0usize;
        loop {
            if depth == tset.len() {
                // all chosen: record tuple
                choice.clear();
                for (d, &i) in tset.iter().enumerate() {
                    choice.insert(i, stack[d]);
                }
                let va = encode(&images[first], &choice);
                let vb = encode(&images[second], &choice);
                let w: i64 = charged[t]
                    .iter()
                    .map(|&(i, j)| {
                        g.weight(choice[&i] as usize, choice[&j] as usize)
                            .expect("pairwise adjacency was checked")
                    })
                    .sum();
                rel.push_row(&[va, vb]);
                weight_tables[t].insert((va, vb), w);
                // backtrack to advance
                depth -= 1;
                stack[depth] += 1;
                continue;
            }
            if stack[depth] as usize >= n {
                if depth == 0 {
                    break;
                }
                stack[depth] = 0;
                depth -= 1;
                stack[depth] += 1;
                continue;
            }
            // adjacency check against earlier choices
            let v = stack[depth] as usize;
            let ok = (0..depth).all(|d| {
                g.weight(stack[d] as usize, v).is_some() && stack[d] as usize != v
            });
            if ok {
                depth += 1;
            } else {
                stack[depth] += 1;
            }
        }
        rel.normalize();
        db.insert(&format!("R{}", t + 1), rel);
    }

    CycleEmbeddingInstance { query, db, weight_tables, embedding: emb }
}

/// Minimum-weight k-clique through tropical aggregation of the cycle
/// query (Example 4.3's pipeline). Returns `None` if `G` has no
/// k-clique.
pub fn min_weight_clique_via_cycle(k: usize, g: &WeightedGraph) -> Option<i64> {
    let inst = build(k, g);
    let tables = &inst.weight_tables;
    let wf: WeightFn<i64> = &|ai, row| {
        *tables[ai]
            .get(&(row[0], row[1]))
            .expect("every relation tuple has a charged weight")
    };
    let agg = aggregate_generic(&inst.query, &inst.db, wf, &Tropical)
        .expect("instance must bind");
    (agg != i64::MAX).then_some(agg)
}

/// Decision version: does `G` (as an unweighted graph) contain a
/// k-clique? Evaluates the Boolean cycle query on the embedding
/// database.
pub fn has_clique_via_cycle(k: usize, g: &WeightedGraph) -> bool {
    let inst = build(k, g);
    cq_engine::generic_join::decide(&inst.query.boolean_version(), &inst.db)
        .expect("instance must bind")
}

#[cfg(test)]
mod tests {
    use super::*;
    use cq_data::generate::seeded_rng;
    use cq_problems::clique::find_k_clique_backtracking;
    use cq_problems::weighted_clique::min_weight_k_clique;
    use cq_problems::Graph;

    #[test]
    fn min_weight_5clique_matches_brute_force() {
        let mut rng = seeded_rng(1);
        for trial in 0..5 {
            let g = WeightedGraph::random_complete(8, 50, &mut rng);
            let via_cycle = min_weight_clique_via_cycle(5, &g);
            let brute = min_weight_k_clique(&g, 5).map(|(w, _)| w);
            assert_eq!(via_cycle, brute, "trial={trial}");
        }
    }

    #[test]
    fn min_weight_3clique_matches() {
        let mut rng = seeded_rng(2);
        let g = WeightedGraph::random_complete(10, 100, &mut rng);
        assert_eq!(
            min_weight_clique_via_cycle(3, &g),
            min_weight_k_clique(&g, 3).map(|(w, _)| w)
        );
    }

    #[test]
    fn decision_on_incomplete_graphs() {
        let mut rng = seeded_rng(3);
        for trial in 0..5 {
            // random graph with 0-weight edges
            let plain = Graph::random_gnp(9, 0.6, &mut rng);
            let wg =
                WeightedGraph::from_edges(9, plain.edges().map(|(a, b)| (a, b, 0i64)));
            assert_eq!(
                has_clique_via_cycle(5, &wg),
                find_k_clique_backtracking(&plain, 5).is_some(),
                "trial={trial}"
            );
        }
    }

    #[test]
    fn no_clique_gives_none() {
        // a 5-cycle graph has no 5-clique
        let wg = WeightedGraph::from_edges(
            5,
            (0..5).map(|i| (i as u32, ((i + 1) % 5) as u32, 1i64)),
        );
        assert_eq!(min_weight_clique_via_cycle(5, &wg), None);
        assert!(!has_clique_via_cycle(5, &wg));
    }

    #[test]
    fn relation_size_accounting() {
        // Example 4.3: each relation ≤ n^4 tuples (n^{wed(e)}, wed = 4)
        let mut rng = seeded_rng(4);
        let g = WeightedGraph::random_complete(6, 10, &mut rng);
        let inst = build(5, &g);
        for i in 1..=5 {
            let r = inst.db.expect(&format!("R{i}"));
            assert!(r.len() <= 6usize.pow(4), "R{i} has {} tuples", r.len());
        }
        assert_eq!(inst.embedding.max_weak_edge_depth(&clique_into_cycle(5).0), 4);
    }

    #[test]
    fn every_pair_charged_exactly_once() {
        // On a complete graph with every edge weighing 1, the minimum
        // 5-clique weight is C(5,2) = 10 — which holds iff each clique
        // pair is charged to exactly one atom.
        let g = WeightedGraph::from_edges(
            7,
            (0..7u32).flat_map(|a| ((a + 1)..7).map(move |b| (a, b, 1i64))),
        );
        assert_eq!(min_weight_clique_via_cycle(5, &g), Some(10));
        assert_eq!(min_weight_clique_via_cycle(3, &g), Some(3));
    }
}
