//! Lemma 3.9: k′-Dominating-Set reduces to counting the star query
//! `q*_k`.
//!
//! Vertices are grouped into blocks of `k′/k`; the relation
//! `R = {(u⃗, v) : ∀i. uᵢv ∉ E ∧ uᵢ ≠ v}` (here `u⃗` is a block of
//! vertex choices, encoded into a single value so `q*_k` keeps binary
//! atoms). An assignment to `(x₁..x_k)` corresponds to a choice `S` of at
//! most `k′` vertices, and it is an **answer** iff some `v` is neither in
//! `S` nor dominated by it — i.e. iff `S` is *not* a dominating set. So:
//!
//! > `G` has a dominating set of size ≤ k′ ⟺ #answers < n^{k′}.
//!
//! The relation has ≤ n^{k′/k + 1} tuples, which is the size accounting
//! that turns an O(m^{k−ε}) star-counting algorithm into an
//! O(n^{k′−ε′}) k′-DS algorithm, refuting SETH via Theorem 3.10.

use cq_core::query::zoo;
use cq_core::ConjunctiveQuery;
use cq_data::{Database, Relation, Val};
use cq_problems::Graph;

/// Encode a block `u⃗ ∈ V^b` as a single value (base-n).
pub fn encode_block(block: &[u32], n: usize) -> Val {
    block.iter().fold(0u64, |acc, &u| acc * n as u64 + u as u64)
}

/// Build the Lemma 3.9 instance: the star query `q*_k` (with self-joins,
/// as in the paper) and the database with the single relation `R`.
///
/// # Panics
/// If `kprime` is not a positive multiple of `k`.
pub fn build(g: &Graph, k: usize, kprime: usize) -> (ConjunctiveQuery, Database) {
    assert!(
        k >= 1 && kprime >= k && kprime.is_multiple_of(k),
        "k′ must be a multiple of k"
    );
    let b = kprime / k; // block length
    let n = g.n();
    let mut rel = Relation::new(2);
    // enumerate all blocks u⃗ ∈ V^b and all v with ∀i: uᵢ ≁ v, uᵢ ≠ v
    let mut block = vec![0u32; b];
    loop {
        'v: for v in 0..n as u32 {
            for &u in &block {
                if u == v || g.has_edge(u as usize, v as usize) {
                    continue 'v;
                }
            }
            rel.push_row(&[encode_block(&block, n), v as Val + u64::MAX / 2]);
            // NOTE: v is shifted into a disjoint value range so block
            // encodings and vertex ids cannot collide.
        }
        // next block (odometer)
        let mut i = b;
        loop {
            if i == 0 {
                rel.normalize();
                let q = zoo::star_selfjoin(k);
                let mut db = Database::new();
                db.insert("R", rel);
                return (q, db);
            }
            i -= 1;
            block[i] += 1;
            if (block[i] as usize) < n {
                break;
            }
            block[i] = 0;
        }
    }
}

/// End-to-end: decide k′-DS by counting `q*_k` answers.
///
/// Returns `(has_dominating_set, answers, total)` where
/// `has_dominating_set = answers < total = n^{k′}`.
pub fn kds_via_star_counting(g: &Graph, k: usize, kprime: usize) -> (bool, u64, u64) {
    let (q, db) = build(g, k, kprime);
    let (count, _) = cq_planner::eval::count(&q, &db).expect("instance must bind");
    let total = (g.n() as u64).pow(kprime as u32);
    (count < total, count, total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cq_data::generate::seeded_rng;
    use cq_problems::dominating_set::find_dominating_set;

    fn check(g: &Graph, k: usize, kprime: usize) {
        let expected = find_dominating_set(g, kprime).is_some();
        let (got, count, total) = kds_via_star_counting(g, k, kprime);
        assert_eq!(got, expected, "k={k} k'={kprime}: count={count}/{total}");
    }

    #[test]
    fn star_center_dominates() {
        let g = Graph::from_edges(5, (1..5).map(|i| (0u32, i as u32)));
        check(&g, 2, 2); // DS of size 1 exists → also size ≤ 2
    }

    #[test]
    fn path_graphs() {
        // P6: γ = 2: k'=2 yes
        let g = Graph::from_edges(6, (0..5).map(|i| (i as u32, i as u32 + 1)));
        check(&g, 2, 2);
        // empty graph on 6 vertices: γ = 6 > 4
        let g2 = Graph::from_edges(6, Vec::<(u32, u32)>::new());
        check(&g2, 2, 4);
    }

    #[test]
    fn random_agreement_k2() {
        let mut rng = seeded_rng(1);
        for trial in 0..8 {
            let g = Graph::random_gnp(7, 0.25 + 0.05 * (trial % 3) as f64, &mut rng);
            check(&g, 2, 2);
        }
    }

    #[test]
    fn random_agreement_blocks() {
        // k=2, k'=4: blocks of 2 — exercises the encoding
        let mut rng = seeded_rng(2);
        for trial in 0..4 {
            let g = Graph::random_gnp(5, 0.3, &mut rng);
            check(&g, 2, 4);
            let _ = trial;
        }
    }

    #[test]
    fn k3_star() {
        let mut rng = seeded_rng(3);
        let g = Graph::random_gnp(5, 0.4, &mut rng);
        check(&g, 3, 3);
    }

    #[test]
    fn relation_size_bound() {
        // |R| ≤ n^{k'/k + 1}
        let mut rng = seeded_rng(4);
        let g = Graph::random_gnp(6, 0.3, &mut rng);
        let (_, db) = build(&g, 2, 4);
        let r = db.expect("R");
        assert!(r.len() <= 6usize.pow(3));
    }

    #[test]
    #[should_panic(expected = "multiple of k")]
    fn kprime_divisibility_checked() {
        let g = Graph::from_edges(3, vec![(0, 1)]);
        let _ = build(&g, 2, 3);
    }
}
