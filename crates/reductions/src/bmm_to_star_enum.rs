//! Theorem 3.15: sparse Boolean matrix multiplication reduces to
//! enumerating `q̄*_2(x1,x2) :- R1(x1,z), R2(x2,z)`.
//!
//! Set `R1 := A` and `R2 := Bᵀ`; then `q̄*_2(D)` is exactly the non-zero
//! set of the Boolean product `AB`. A constant-delay algorithm after
//! linear preprocessing for `q̄*_2` would therefore multiply sparse
//! matrices in time Õ(m) — refuting Hypothesis 1. Executably: we compute
//! products through the query's *materialization* algorithm (the best
//! available, since `q̄*_2` is not free-connex) and validate against the
//! direct SpGEMM.

use cq_core::query::zoo;
use cq_core::ConjunctiveQuery;
use cq_data::{Database, Relation, Val};
use cq_matrix::SparseBoolMat;

/// Build the Theorem 3.15 database for two sparse matrices.
pub fn build(a: &SparseBoolMat, b: &SparseBoolMat) -> (ConjunctiveQuery, Database) {
    assert_eq!(a.n_cols(), b.n_rows(), "dimension mismatch");
    let r1 =
        Relation::from_pairs(a.entries().into_iter().map(|(i, k)| (i as Val, k as Val)));
    let r2 = Relation::from_pairs(
        b.entries().into_iter().map(|(k, j)| (j as Val, k as Val)), // transpose
    );
    let q = zoo::star_selfjoin_free(2);
    let mut db = Database::new();
    db.insert("R1", r1);
    db.insert("R2", r2);
    (q, db)
}

/// Multiply two sparse Boolean matrices by *evaluating the query*: the
/// answers of `q̄*_2` are the product's non-zeros.
pub fn multiply_via_query(a: &SparseBoolMat, b: &SparseBoolMat) -> SparseBoolMat {
    let (q, db) = build(a, b);
    let answers = cq_engine::generic_join::answers(&q, &db).expect("instance must bind");
    SparseBoolMat::from_entries(
        a.n_rows(),
        b.n_cols(),
        answers.iter().map(|row| (row[0] as u32, row[1] as u32)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use cq_data::generate::seeded_rng;
    use cq_matrix::sparse::spgemm;
    use rand::Rng;

    fn random_sparse(n: usize, m: usize, seed: u64) -> SparseBoolMat {
        let mut rng = seeded_rng(seed);
        SparseBoolMat::from_entries(
            n,
            n,
            (0..m).map(|_| (rng.gen_range(0..n as u32), rng.gen_range(0..n as u32))),
        )
    }

    #[test]
    fn product_matches_spgemm() {
        for seed in 0..6u64 {
            let a = random_sparse(30, 120, seed);
            let b = random_sparse(30, 120, seed + 50);
            assert_eq!(multiply_via_query(&a, &b), spgemm(&a, &b), "seed={seed}");
        }
    }

    #[test]
    fn rectangular_product() {
        let a = SparseBoolMat::from_entries(2, 3, [(0u32, 1u32), (1, 2)]);
        let b = SparseBoolMat::from_entries(3, 4, [(1u32, 3u32), (2, 0)]);
        let c = multiply_via_query(&a, &b);
        assert_eq!(c.entries(), vec![(0, 3), (1, 0)]);
    }

    #[test]
    fn zero_product() {
        let a = SparseBoolMat::from_entries(5, 5, [(0u32, 0u32)]);
        let b = SparseBoolMat::from_entries(5, 5, [(1u32, 1u32)]);
        assert_eq!(multiply_via_query(&a, &b).nnz(), 0);
    }

    #[test]
    fn database_size_is_input_nnz() {
        let a = random_sparse(20, 80, 9);
        let b = random_sparse(20, 70, 10);
        let (_, db) = build(&a, &b);
        assert_eq!(db.size(), a.nnz() + b.nnz());
    }

    #[test]
    fn query_is_not_free_connex() {
        // the reduction's point: q̄*_2 sits on the hard side
        let q = zoo::star_selfjoin_free(2);
        assert!(!cq_core::free_connex::is_free_connex(&q));
    }
}
