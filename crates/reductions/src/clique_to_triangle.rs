//! Theorem 4.1 (Nešetřil–Poljak): k-clique reduces to triangle finding
//! on the derived graph of ⌈k/3⌉-ish cliques — the reason k-Clique (for
//! plain graphs) is *not* a good basis for tight query lower bounds, and
//! the motivation for the hyperclique/weighted variants (§4.1.2).
//!
//! The algorithm itself lives in `cq_problems::clique::find_k_clique_np`;
//! this module adds the size accounting the theorem's runtime analysis
//! rests on.

use cq_problems::clique::{enumerate_cliques, np_split};
use cq_problems::Graph;

/// Size report for the derived "clique graph" of the reduction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DerivedSize {
    /// Split of k into three near-equal parts.
    pub parts: (usize, usize, usize),
    /// Number of derived vertices (Σ #rᵢ-cliques) — the `O(n^{k/3})` of
    /// the proof.
    pub n_vertices: usize,
}

/// Compute the derived-graph size for `(g, k)` without running the full
/// reduction.
pub fn derived_size(g: &Graph, k: usize) -> DerivedSize {
    let parts = np_split(k);
    let (r1, r2, r3) = parts;
    let c1 = enumerate_cliques(g, r1).len();
    let c2 = if r2 == r1 { c1 } else { enumerate_cliques(g, r2).len() };
    let c3 = if r3 == r2 { c2 } else { enumerate_cliques(g, r3).len() };
    DerivedSize { parts, n_vertices: c1 + c2 + c3 }
}

/// Re-export: k-clique via triangles on the derived graph.
pub use cq_problems::clique::find_k_clique_np as kclique_via_triangle;

#[cfg(test)]
mod tests {
    use super::*;
    use cq_data::generate::seeded_rng;
    use cq_problems::clique::{find_k_clique_backtracking, is_clique};

    #[test]
    fn end_to_end_agreement() {
        let mut rng = seeded_rng(1);
        for trial in 0..8 {
            let g = Graph::random_gnp(15, 0.45, &mut rng);
            for k in [4usize, 5, 6] {
                let via_triangle = kclique_via_triangle(&g, k);
                let reference = find_k_clique_backtracking(&g, k);
                assert_eq!(
                    via_triangle.is_some(),
                    reference.is_some(),
                    "trial={trial} k={k}"
                );
                if let Some(c) = via_triangle {
                    assert!(is_clique(&g, &c, k));
                }
            }
        }
    }

    #[test]
    fn derived_vertices_bounded_by_binomial() {
        let mut rng = seeded_rng(2);
        let g = Graph::random_gnp(12, 0.5, &mut rng);
        let ds = derived_size(&g, 6);
        assert_eq!(ds.parts, (2, 2, 2));
        // at most 3 · C(12, 2) derived vertices
        assert!(ds.n_vertices <= 3 * 66);
    }

    #[test]
    fn split_consistency() {
        for k in 3..=9 {
            let (a, b, c) = np_split(k);
            assert_eq!(a + b + c, k);
            assert!(a >= b && b >= c && c >= 1);
            assert!(a - c <= 1);
        }
    }
}
