//! Theorem 3.5: hyperclique finding embeds into Loomis–Whitney queries.
//!
//! Given a `(k−1)`-uniform hypergraph `H`, the relation `R` contains all
//! permutations of each edge; every atom of `q^LW_k` is bound to `R`.
//! Then `q^LW_k` is true iff `H` has a hyperclique of size `k`. The
//! relation size is at most `(k−1)!·|E| ≤ n^{k−1}` — the accounting that
//! turns an `m^{1+1/(k−1)−ε}` LW algorithm into an `n^{k−(k−1)ε}`
//! hyperclique algorithm, contradicting Hypothesis 3.

use cq_core::query::zoo;
use cq_core::ConjunctiveQuery;
use cq_data::{Database, Relation, Val};
use cq_problems::hyperclique::UniformHypergraph;

/// All permutations of `items`, by Heap's algorithm.
pub fn permutations(items: &[Val]) -> Vec<Vec<Val>> {
    let mut a = items.to_vec();
    let n = a.len();
    let mut out = Vec::new();
    fn heap(a: &mut Vec<Val>, k: usize, out: &mut Vec<Vec<Val>>) {
        if k <= 1 {
            out.push(a.clone());
            return;
        }
        for i in 0..k {
            heap(a, k - 1, out);
            if k.is_multiple_of(2) {
                a.swap(i, k - 1);
            } else {
                a.swap(0, k - 1);
            }
        }
    }
    heap(&mut a, n, &mut out);
    out
}

/// Build the LW database from a `(k−1)`-uniform hypergraph: every atom's
/// relation is the permutation closure of the edge set.
pub fn build(h: &UniformHypergraph, k: usize) -> (ConjunctiveQuery, Database) {
    assert_eq!(h.h(), k - 1, "hypergraph must be (k−1)-uniform for q^LW_k");
    let mut rel = Relation::new(k - 1);
    for e in h.edges() {
        let vals: Vec<Val> = e.iter().map(|&v| v as Val).collect();
        for p in permutations(&vals) {
            rel.push_row(&p);
        }
    }
    rel.normalize();
    let q = zoo::loomis_whitney_boolean(k);
    let mut db = Database::new();
    for i in 1..=k {
        db.insert(&format!("R{i}"), rel.clone());
    }
    (q, db)
}

/// End-to-end: decide `k`-hyperclique existence through the LW query
/// (evaluated by the worst-case optimal join, the Õ(m^{1+1/(k−1)})
/// algorithm of NPRR).
pub fn hyperclique_via_lw(h: &UniformHypergraph, k: usize) -> bool {
    let (q, db) = build(h, k);
    cq_engine::generic_join::decide(&q, &db).expect("constructed database must bind")
}

#[cfg(test)]
mod tests {
    use super::*;
    use cq_data::generate::seeded_rng;
    use cq_problems::hyperclique::find_hyperclique;

    #[test]
    fn permutations_count() {
        assert_eq!(permutations(&[1, 2, 3]).len(), 6);
        let mut ps = permutations(&[1, 2]);
        ps.sort();
        assert_eq!(ps, vec![vec![1, 2], vec![2, 1]]);
        assert_eq!(permutations(&[7]).len(), 1);
    }

    #[test]
    fn planted_hyperclique_detected() {
        let mut rng = seeded_rng(1);
        let mut h = UniformHypergraph::random(10, 3, 25, &mut rng);
        assert_eq!(hyperclique_via_lw(&h, 4), find_hyperclique(&h, 4).is_some());
        h.plant_hyperclique(4);
        assert!(hyperclique_via_lw(&h, 4));
    }

    #[test]
    fn agreement_on_random_instances() {
        let mut rng = seeded_rng(2);
        for trial in 0..10 {
            let h = UniformHypergraph::random(8, 3, 30 + trial * 3, &mut rng);
            assert_eq!(
                hyperclique_via_lw(&h, 4),
                find_hyperclique(&h, 4).is_some(),
                "trial={trial}"
            );
        }
    }

    #[test]
    fn lw5_with_4_uniform() {
        let mut rng = seeded_rng(3);
        for trial in 0..5 {
            let mut h = UniformHypergraph::random(8, 4, 40, &mut rng);
            if trial % 2 == 0 {
                h.plant_hyperclique(5);
            }
            assert_eq!(
                hyperclique_via_lw(&h, 5),
                find_hyperclique(&h, 5).is_some(),
                "trial={trial}"
            );
        }
    }

    #[test]
    fn size_accounting() {
        // |R| ≤ (k−1)! · |E|
        let mut rng = seeded_rng(4);
        let h = UniformHypergraph::random(12, 3, 50, &mut rng);
        let (_, db) = build(&h, 4);
        let r = db.expect("R1");
        assert!(r.len() <= 6 * h.m());
        assert_eq!(r.arity(), 3);
    }

    #[test]
    #[should_panic(expected = "uniform")]
    fn uniformity_checked() {
        let h = UniformHypergraph::from_edges(4, 2, vec![vec![0, 1]]);
        let _ = build(&h, 4);
    }
}
