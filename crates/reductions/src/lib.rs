//! # cq-reductions — the paper's lower-bound reductions, executable
//!
//! Every reduction in Mengel (PODS 2025) is implemented as a function
//! that really builds the instance and really runs the target algorithm,
//! so each one is (a) testable for correctness against the source
//! problem's reference solver and (b) benchmarkable for the size/cost
//! accounting the proof claims.
//!
//! | Module | Paper | Reduction |
//! |---|---|---|
//! | [`triangle_to_query`] | Prop 3.3 | triangle finding → any cyclic arity-2 Boolean CQ |
//! | [`hyperclique_to_lw`] | Thm 3.5 | (k−1)-uniform k-hyperclique → Loomis–Whitney q^LW_k |
//! | [`kds_to_star`] | Lemma 3.9 | k′-Dominating-Set → counting q*_k |
//! | [`sat_to_kds`] | Thm 3.10 | CNF-SAT → k-Dominating-Set (Pătraşcu–Williams) |
//! | [`bmm_to_star_enum`] | Thm 3.15 | sparse Boolean MM → enumerating q̄*_2 |
//! | [`triangle_to_testing`] | Lemma 3.21 / 3.23 | triangle → testing q*_2 / direct access for q̂*_2 |
//! | [`three_sum_to_sum_da`] | Lemma 3.25 | 3SUM → sum-order direct access |
//! | [`clique_to_triangle`] | Thm 4.1 | k-clique → triangle (Nešetřil–Poljak), with size accounting |
//! | [`clique_embedding_db`] | §4.2 / Ex 4.3 | K_ℓ-embeddings → databases; min-weight clique via cycle aggregation |
//! | [`selfjoin_interpolation`] | Thm 3.8 remark | self-join counting ↔ self-join-free counting via inclusion–exclusion |

pub mod bmm_to_star_enum;
pub mod clique_embedding_db;
pub mod clique_to_triangle;
pub mod hyperclique_to_lw;
pub mod kds_to_star;
pub mod sat_to_kds;
pub mod selfjoin_interpolation;
pub mod three_sum_to_sum_da;
pub mod triangle_to_query;
pub mod triangle_to_testing;
