//! Theorem 3.10 (Pătraşcu–Williams): CNF-SAT reduces to k-Dominating-Set
//! with n_G ≈ k·2^{n/k} vertices — so an O(n_G^{k−ε}) k-DS algorithm
//! would give an O(2^{n(1−ε′)}) SAT algorithm, refuting SETH.
//!
//! Construction: split the variables into `k` groups. For each group, a
//! *cloud* of 2^{|group|} vertices (one per partial assignment), made a
//! clique, plus a pendant *guard* adjacent to exactly its cloud. One
//! vertex per clause, adjacent to the partial assignments that satisfy
//! it. The guards' closed neighborhoods are disjoint, forcing any size-k
//! dominating set to pick one vertex per cloud (or its guard); those
//! picks dominate every clause iff the union of the partial assignments
//! satisfies the formula.

use cq_problems::sat::Cnf;
use cq_problems::Graph;

/// The reduction output: the graph, the DS size bound (= k), and the
/// vertex layout for diagnostics.
pub struct KdsInstance {
    pub graph: Graph,
    /// dominating-set size to test (the k of k-DS).
    pub k: usize,
    /// number of assignment vertices (Σ 2^{group size}).
    pub n_assignment_vertices: usize,
}

/// Build the Theorem 3.10 instance.
///
/// # Panics
/// If `k < 1` or any group would exceed 20 variables (2^20 cloud cap).
pub fn build(cnf: &Cnf, k: usize) -> KdsInstance {
    assert!(k >= 1);
    let n = cnf.n_vars;
    // split variables 1..=n into k groups round-robin by contiguous blocks
    let base = n / k;
    let extra = n % k;
    let mut groups: Vec<Vec<usize>> = Vec::with_capacity(k);
    let mut next = 1usize;
    for i in 0..k {
        let size = base + usize::from(i < extra);
        groups.push((next..next + size).collect());
        next += size;
    }
    for g in &groups {
        assert!(g.len() <= 20, "group too large for the cloud construction");
    }

    // vertex layout: clouds first, then guards, then clauses
    let cloud_sizes: Vec<usize> = groups.iter().map(|g| 1usize << g.len()).collect();
    let mut cloud_offset = vec![0usize; k];
    let mut acc = 0usize;
    for i in 0..k {
        cloud_offset[i] = acc;
        acc += cloud_sizes[i];
    }
    let n_assign = acc;
    let guard_offset = n_assign;
    let clause_offset = guard_offset + k;
    let n_vertices = clause_offset + cnf.clauses.len();

    let mut edges: Vec<(u32, u32)> = Vec::new();
    // cloud cliques + guards
    for i in 0..k {
        let off = cloud_offset[i];
        let size = cloud_sizes[i];
        for a in 0..size {
            for b in (a + 1)..size {
                edges.push(((off + a) as u32, (off + b) as u32));
            }
            edges.push(((off + a) as u32, (guard_offset + i) as u32));
        }
    }
    // clause adjacency: assignment (i, mask) satisfies clause c if some
    // literal of c is over a variable of group i and made true by mask
    for (ci, clause) in cnf.clauses.iter().enumerate() {
        let cv = (clause_offset + ci) as u32;
        for (i, group) in groups.iter().enumerate() {
            let off = cloud_offset[i];
            for mask in 0..cloud_sizes[i] {
                let satisfies = clause.iter().any(|&lit| {
                    let var = lit.unsigned_abs() as usize;
                    match group.iter().position(|&v| v == var) {
                        Some(pos) => {
                            let val = mask >> pos & 1 == 1;
                            (lit > 0) == val
                        }
                        None => false,
                    }
                });
                if satisfies {
                    edges.push(((off + mask) as u32, cv));
                }
            }
        }
    }
    KdsInstance {
        graph: Graph::from_edges(n_vertices, edges),
        k,
        n_assignment_vertices: n_assign,
    }
}

/// End-to-end: decide satisfiability through k-Dominating-Set.
pub fn sat_via_kds(cnf: &Cnf, k: usize) -> bool {
    let inst = build(cnf, k);
    cq_problems::dominating_set::find_dominating_set(&inst.graph, inst.k).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cq_data::generate::seeded_rng;
    use cq_problems::sat::{dpll, Cnf};

    #[test]
    fn simple_sat_and_unsat() {
        let sat = Cnf::new(2, vec![vec![1, 2], vec![-1, 2]]);
        let unsat = Cnf::new(1, vec![vec![1], vec![-1]]);
        for k in [1usize, 2] {
            assert!(sat_via_kds(&sat, k), "k={k}");
            assert!(!sat_via_kds(&unsat, k), "k={k}");
        }
    }

    #[test]
    fn agreement_with_dpll_random() {
        let mut rng = seeded_rng(1);
        for trial in 0..15 {
            let n = 6;
            let m = 8 + trial; // denser → more unsat cases
            let cnf = Cnf::random_ksat(n, m, 3, &mut rng);
            let expected = dpll(&cnf).is_some();
            for k in [2usize, 3] {
                assert_eq!(sat_via_kds(&cnf, k), expected, "trial={trial} k={k}");
            }
        }
    }

    #[test]
    fn empty_formula_sat() {
        let cnf = Cnf::new(4, vec![]);
        assert!(sat_via_kds(&cnf, 2));
    }

    #[test]
    fn vertex_count_accounting() {
        // n_G = Σ 2^{n/k} + k + #clauses
        let cnf = Cnf::new(6, vec![vec![1, -2, 3], vec![4, 5, -6]]);
        let inst = build(&cnf, 2);
        assert_eq!(inst.n_assignment_vertices, 8 + 8);
        assert_eq!(inst.graph.n(), 16 + 2 + 2);
    }

    #[test]
    fn uneven_groups() {
        // 5 variables into 2 groups: 3 + 2
        let cnf = Cnf::new(5, vec![vec![1, 5], vec![-3, 4]]);
        let inst = build(&cnf, 2);
        assert_eq!(inst.n_assignment_vertices, 8 + 4);
        assert_eq!(sat_via_kds(&cnf, 2), dpll(&cnf).is_some());
    }

    #[test]
    fn k_larger_than_needed_still_correct() {
        let mut rng = seeded_rng(2);
        let cnf = Cnf::random_ksat(4, 10, 2, &mut rng);
        let expected = dpll(&cnf).is_some();
        assert_eq!(sat_via_kds(&cnf, 4), expected);
    }
}
