//! The interpolation argument for counting with self-joins (the remark
//! after Theorem 3.8, after [Dalmau–Jonsson 35]).
//!
//! Theorem 3.8's lower bound does not need self-join freeness because a
//! counting oracle for a self-join query recovers the count of its
//! self-join-free *colorful* version: if `q` uses the symbol `R` in `t`
//! atoms and we evaluate `|q(∪_{i∈T} S_i)|` for every subset `T` of `t`
//! pairwise-disjoint parts, inclusion–exclusion isolates the answers
//! whose atom-to-part attribution is surjective. When the parts are
//! *position-forcing* (a tuple of `S_i` can only sit at atom `i`, as the
//! lower-bound constructions arrange), the surjective count **is** the
//! count of the self-join-free query `q̃(R_1 := S_1, ..., R_t := S_t)`.
//!
//! Attribution is only well-defined without projections, so this applies
//! to *join* queries — exactly Theorem 3.8's setting.

use cq_core::{ConjunctiveQuery, QueryBuilder};
use cq_data::{Database, Relation};

/// The self-join-free version of `q`: atom `i` gets fresh symbol
/// `{R}__{i}`.
pub fn selfjoin_free_version(q: &ConjunctiveQuery) -> ConjunctiveQuery {
    let mut b = QueryBuilder::new(q.name());
    let vars: Vec<_> = q.vars().map(|v| q.var_name(v).to_string()).collect();
    let handles: Vec<_> = vars.iter().map(|n| b.var(n)).collect();
    for (i, atom) in q.atoms().iter().enumerate() {
        let vs: Vec<_> = atom.vars.iter().map(|v| handles[v.index()]).collect();
        b.atom(&format!("{}__{}", atom.relation, i), &vs);
    }
    b.free(&q.free_vars().iter().map(|v| handles[v.index()]).collect::<Vec<_>>());
    b.build().expect("renaming preserves well-formedness")
}

/// Count the colorful (surjectively attributed) answers of the self-join
/// join query `q` (single relation symbol, `t = q.atoms()` occurrences)
/// over pairwise-disjoint parts `S_1..S_t`, using only a counting oracle
/// for `q` itself: `Σ_{T⊆[t]} (−1)^{t−|T|} |q(∪_{i∈T} S_i)|`.
///
/// # Panics
/// If `q` is not a join query, uses more than one relation symbol, or
/// `parts.len() != t`.
pub fn colorful_count_by_inclusion_exclusion(
    q: &ConjunctiveQuery,
    parts: &[Relation],
) -> i64 {
    assert!(q.is_join_query(), "attribution needs join queries (Thm 3.8 setting)");
    let symbol = &q.atoms()[0].relation;
    assert!(
        q.atoms().iter().all(|a| &a.relation == symbol),
        "expected a single repeated relation symbol"
    );
    let t = q.atoms().len();
    assert_eq!(parts.len(), t, "need one part per atom occurrence");
    let arity = q.atoms()[0].vars.len();

    let mut total: i64 = 0;
    for mask in 0u32..(1u32 << t) {
        let mut union = Relation::new(arity);
        for (i, part) in parts.iter().enumerate() {
            if mask >> i & 1 == 1 {
                for row in part.iter() {
                    union.push_row(row);
                }
            }
        }
        union.normalize();
        let mut db = Database::new();
        db.insert(symbol, union);
        let (count, _) = cq_planner::eval::count(q, &db).expect("instance must bind");
        let sign =
            if (t - mask.count_ones() as usize).is_multiple_of(2) { 1 } else { -1 };
        total += sign * count as i64;
    }
    total
}

/// Reference: evaluate the self-join-free version directly with
/// `R__i := S_i`.
pub fn selfjoin_free_count(q: &ConjunctiveQuery, parts: &[Relation]) -> u64 {
    let qf = selfjoin_free_version(q);
    let mut db = Database::new();
    for (i, atom) in q.atoms().iter().enumerate() {
        db.insert(&format!("{}__{}", atom.relation, i), parts[i].clone());
    }
    let (count, _) = cq_planner::eval::count(&qf, &db).expect("instance must bind");
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use cq_core::parse_query;
    use cq_data::generate::seeded_rng;
    use rand::Rng;

    /// Position-forcing parts for the self-join path query
    /// q(x,y,z) :- R(x,y), R(y,z): S_1 ⊆ A×B, S_2 ⊆ B×C with A, B, C
    /// pairwise disjoint value ranges.
    fn layered_parts(m: usize, seed: u64) -> Vec<Relation> {
        let mut rng = seeded_rng(seed);
        let s1 = Relation::from_pairs(
            (0..m).map(|_| (rng.gen_range(0..20u64), 100 + rng.gen_range(0..20u64))),
        );
        let s2 = Relation::from_pairs(
            (0..m)
                .map(|_| (100 + rng.gen_range(0..20u64), 200 + rng.gen_range(0..20u64))),
        );
        vec![s1, s2]
    }

    #[test]
    fn interpolation_recovers_selfjoin_free_count() {
        let q = parse_query("q(x, y, z) :- R(x, y), R(y, z)").unwrap();
        for seed in 0..5u64 {
            let parts = layered_parts(60, seed);
            let via_ie = colorful_count_by_inclusion_exclusion(&q, &parts);
            let direct = selfjoin_free_count(&q, &parts) as i64;
            assert_eq!(via_ie, direct, "seed={seed}");
        }
    }

    #[test]
    fn three_atom_chain() {
        let q = parse_query("q(x,y,z,w) :- R(x,y), R(y,z), R(z,w)").unwrap();
        let mut rng = seeded_rng(9);
        let mk = |lo: u64, rng: &mut rand::rngs::StdRng| {
            Relation::from_pairs((0..30).map(|_| {
                (lo + rng.gen_range(0..10u64), lo + 100 + rng.gen_range(0..10u64))
            }))
        };
        let parts = vec![mk(0, &mut rng), mk(100, &mut rng), mk(200, &mut rng)];
        assert_eq!(
            colorful_count_by_inclusion_exclusion(&q, &parts),
            selfjoin_free_count(&q, &parts) as i64
        );
    }

    #[test]
    fn empty_parts_zero() {
        let q = parse_query("q(x, y, z) :- R(x, y), R(y, z)").unwrap();
        let parts = vec![Relation::new(2), Relation::new(2)];
        assert_eq!(colorful_count_by_inclusion_exclusion(&q, &parts), 0);
    }

    #[test]
    fn selfjoin_free_version_shape() {
        let q = parse_query("q(x, y, z) :- R(x, y), R(y, z)").unwrap();
        let qf = selfjoin_free_version(&q);
        assert!(qf.is_self_join_free());
        assert_eq!(qf.atoms().len(), 2);
        assert_eq!(qf.atoms()[0].relation, "R__0");
        assert_eq!(qf.n_vars(), q.n_vars());
    }

    #[test]
    #[should_panic(expected = "join queries")]
    fn projections_rejected() {
        let q = parse_query("q(x) :- R(x, y), R(y, x)").unwrap();
        let _ = colorful_count_by_inclusion_exclusion(
            &q,
            &[Relation::new(2), Relation::new(2)],
        );
    }
}
