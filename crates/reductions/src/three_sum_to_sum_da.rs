//! Lemma 3.25: 3SUM reduces to sum-order direct access for any
//! self-join-free join query with two variables sharing no atom.
//!
//! We use the concrete witness query `q(x, u, y) :- R1(x, u), R2(u, y)`
//! (`x` and `y` share no atom). `x` ranges over (indices of) `A`, `y`
//! over `B`, `u` is pinned to a zero-weight dummy; the weight function
//! sends each index to its list value. A tuple of weight `c` exists iff
//! some `a + b = c`, so |C| binary searches over the sum-ordered array
//! solve 3SUM. The database has O(n) tuples, so Õ(m^{2−ε}) preprocessing
//! with Õ(m^{1−ε}) access would give an Õ(n^{2−ε}) 3SUM algorithm,
//! refuting Hypothesis 5. Executably we drive the materialized structure
//! (whose Θ(n²)-size array is exactly the cost the lemma proves
//! unavoidable).

use cq_core::{parse_query, ConjunctiveQuery};
use cq_data::{Database, Relation, Val};
use cq_engine::sum_order::SumOrderAccess;
use cq_problems::three_sum::ThreeSumInstance;

/// The reduction's query, database, and weight table.
pub struct SumDaInstance {
    /// `q(x, u, y) :- R1(x, u), R2(u, y)`.
    pub query: ConjunctiveQuery,
    pub db: Database,
    /// weight of each domain value
    pub weights: Vec<i64>,
}

/// Build the Lemma 3.25 instance. Domain: value `0` is the dummy `u`
/// (weight 0); values `1..=n_a` index `A`; the following index `B`.
pub fn build(inst: &ThreeSumInstance) -> SumDaInstance {
    let query = parse_query("q(x, u, y) :- R1(x, u), R2(u, y)").unwrap();
    let n_a = inst.a.len();
    let n_b = inst.b.len();
    let mut weights = vec![0i64; 1 + n_a + n_b];
    let mut r1 = Relation::new(2);
    for (i, &a) in inst.a.iter().enumerate() {
        let v = (1 + i) as Val;
        weights[v as usize] = a;
        r1.push_row(&[v, 0]);
    }
    let mut r2 = Relation::new(2);
    for (j, &b) in inst.b.iter().enumerate() {
        let v = (1 + n_a + j) as Val;
        weights[v as usize] = b;
        r2.push_row(&[0, v]);
    }
    r1.normalize();
    r2.normalize();
    let mut db = Database::new();
    db.insert("R1", r1);
    db.insert("R2", r2);
    SumDaInstance { query, db, weights }
}

/// Solve 3SUM through sum-order direct access (Lemma 3.25's algorithm:
/// preprocess once, then one weight-existence binary search per target in
/// `C`).
pub fn three_sum_via_sum_order_da(inst: &ThreeSumInstance) -> bool {
    let red = build(inst);
    let w = |v: Val| red.weights[v as usize];
    let da =
        SumOrderAccess::build_materialized(&red.query, &red.db, &w).expect("join query");
    inst.c.iter().any(|&c| da.has_weight(c))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cq_data::generate::seeded_rng;
    use cq_problems::three_sum::{three_sum_sorted, ThreeSumInstance};

    #[test]
    fn planted_solutions_found() {
        let mut rng = seeded_rng(1);
        for _ in 0..10 {
            let inst = ThreeSumInstance::random(25, 500, true, &mut rng);
            assert!(three_sum_via_sum_order_da(&inst));
        }
    }

    #[test]
    fn agreement_with_two_pointer() {
        let mut rng = seeded_rng(2);
        for trial in 0..20 {
            let inst = ThreeSumInstance::random(20, 40, false, &mut rng);
            assert_eq!(
                three_sum_via_sum_order_da(&inst),
                three_sum_sorted(&inst).is_some(),
                "trial={trial}"
            );
        }
    }

    #[test]
    fn negative_values() {
        let inst = ThreeSumInstance { a: vec![-7, 3], b: vec![4, -1], c: vec![-8] };
        // -7 + -1 = -8 ✓
        assert!(three_sum_via_sum_order_da(&inst));
        let inst2 = ThreeSumInstance { a: vec![-7, 3], b: vec![4, -1], c: vec![100] };
        assert!(!three_sum_via_sum_order_da(&inst2));
    }

    #[test]
    fn database_is_linear_size() {
        let mut rng = seeded_rng(3);
        let inst = ThreeSumInstance::random(50, 1000, false, &mut rng);
        let red = build(&inst);
        assert_eq!(red.db.size(), 100); // |A| + |B| tuples
    }

    #[test]
    fn query_shape_matches_lemma() {
        let red = build(&ThreeSumInstance { a: vec![1], b: vec![2], c: vec![3] });
        let q = &red.query;
        assert!(q.is_join_query());
        assert!(q.is_self_join_free());
        assert!(q.hypergraph().is_acyclic());
        // x and y share no atom
        let x = q.var_by_name("x").unwrap();
        let y = q.var_by_name("y").unwrap();
        assert!(!q.hypergraph().adjacent(x.index(), y.index()));
        // and Thm 3.26 classifies sum-order DA as 3SUM-hard
        let v = cq_core::classify::classify_direct_access_sum(q);
        assert!(v.is_hard());
    }
}
