//! Lemma 3.21 and Lemma 3.23: triangle finding through testing / direct
//! access for star queries.
//!
//! * Lemma 3.21: set `R := E`; then `(a,b) ∈ q*_2(D)` iff `a` and `b`
//!   have a common neighbor, so probing every edge `(a,b) ∈ E` detects a
//!   triangle with |E| probes after one preprocessing pass. Õ(m)
//!   preprocessing + Õ(1) probes would refute the Triangle Hypothesis —
//!   so the star tester's per-probe degree cost is conditionally
//!   necessary.
//! * Lemma 3.23 = Lemma 3.20 ∘ Lemma 3.21: a direct-access structure for
//!   `q̂*_2` in the lexicographic order `x1 > x2 > z` yields exactly such
//!   a tester through binary search on the simulated array.

use cq_core::query::zoo;
use cq_core::Var;
use cq_data::{Database, Relation, Val};
use cq_engine::direct_access::{test_prefix, DirectAccess, MaterializedDirectAccess};
use cq_engine::testing::StarTester;
use cq_problems::Graph;

/// The symmetric edge relation of `g`.
pub fn edge_relation(g: &Graph) -> Relation {
    let mut pairs = Vec::with_capacity(2 * g.m());
    for (a, b) in g.edges() {
        pairs.push((a as Val, b as Val));
        pairs.push((b as Val, a as Val));
    }
    Relation::from_pairs(pairs)
}

/// Lemma 3.21, executable: detect a triangle by |E| star-tester probes.
pub fn triangle_via_star_testing(g: &Graph) -> bool {
    let r = edge_relation(g);
    let tester = StarTester::preprocess(&r);
    g.edges().any(|(a, b)| tester.test(&[a as Val, b as Val]))
}

/// Lemma 3.23, executable: detect a triangle through direct access for
/// `q̂*_2` under the order `x1, x2, z` (the disrupted order — only the
/// materialization structure supports it, which is the lemma's point).
pub fn triangle_via_qhat_direct_access(g: &Graph) -> bool {
    let q = zoo::star_full(2);
    let mut db = Database::new();
    db.insert("R", edge_relation(g));
    let x1 = q.var_by_name("x1").unwrap();
    let x2 = q.var_by_name("x2").unwrap();
    let z = q.var_by_name("z").unwrap();
    let order: Vec<Var> = vec![x1, x2, z];
    // The efficient builder must refuse this order (disruptive trio)…
    debug_assert!(
        cq_engine::LexDirectAccess::build(&q, &db, &order).is_err(),
        "x1,x2,z order must be rejected by the compatible-tree builder"
    );
    // …so the only structure is the materialized one.
    let da = MaterializedDirectAccess::build(&q, &db, &order).expect("join query");
    if da.is_empty() {
        return false;
    }
    g.edges().any(|(a, b)| test_prefix(&da, &order, &[a as Val, b as Val]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cq_data::generate::seeded_rng;
    use cq_problems::triangle::find_triangle_edge_iterator;

    #[test]
    fn star_testing_agrees_with_reference() {
        let mut rng = seeded_rng(1);
        for trial in 0..15 {
            let g = Graph::random_gnm(16, 20 + 2 * trial, &mut rng);
            assert_eq!(
                triangle_via_star_testing(&g),
                find_triangle_edge_iterator(&g).is_some(),
                "trial {trial}"
            );
        }
    }

    #[test]
    fn direct_access_agrees_with_reference() {
        let mut rng = seeded_rng(2);
        for trial in 0..10 {
            let g = Graph::random_gnm(12, 14 + 2 * trial, &mut rng);
            assert_eq!(
                triangle_via_qhat_direct_access(&g),
                find_triangle_edge_iterator(&g).is_some(),
                "trial {trial}"
            );
        }
    }

    #[test]
    fn triangle_free_cases() {
        let mut rng = seeded_rng(3);
        let g = Graph::random_bipartite(20, 50, &mut rng);
        assert!(!triangle_via_star_testing(&g));
        assert!(!triangle_via_qhat_direct_access(&g));
    }

    #[test]
    fn single_triangle() {
        let g = Graph::from_edges(3, vec![(0, 1), (1, 2), (2, 0)]);
        assert!(triangle_via_star_testing(&g));
        assert!(triangle_via_qhat_direct_access(&g));
    }

    #[test]
    fn empty_graph() {
        let g = Graph::from_edges(5, Vec::<(u32, u32)>::new());
        assert!(!triangle_via_star_testing(&g));
        assert!(!triangle_via_qhat_direct_access(&g));
    }
}
