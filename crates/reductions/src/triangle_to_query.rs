//! Proposition 3.3: triangle finding embeds into every cyclic arity-2
//! self-join-free Boolean conjunctive query.
//!
//! Given the query's induced cycle (a Brault-Baron witness), three
//! consecutive cycle edges carry the input graph's edge relation; the
//! remaining cycle edges carry the equality relation on `V` (contracting
//! the cycle to a triangle); atoms touching the cycle in one variable are
//! padded with a dummy element, and atoms disjoint from the cycle get
//! the all-dummy tuple. The query is then true iff the graph has a
//! triangle.

use cq_core::hypergraph::mask_vertices;
use cq_core::{ConjunctiveQuery, Var};
use cq_data::{Database, Relation, Val};
use cq_problems::Graph;

/// Errors of the construction.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ReductionError {
    /// The query must be cyclic with all atoms of arity 2.
    NotCyclicBinary,
    /// The query must be self-join free (each atom gets its own relation).
    NotSelfJoinFree,
}

/// The symmetric edge relation of `g` (both orientations), with vertex
/// `v` encoded as value `v`.
pub fn edge_relation(g: &Graph) -> Relation {
    let mut pairs = Vec::with_capacity(2 * g.m());
    for (a, b) in g.edges() {
        pairs.push((a as Val, b as Val));
        pairs.push((b as Val, a as Val));
    }
    Relation::from_pairs(pairs)
}

/// Build the Proposition 3.3 database: `q` must be a cyclic self-join
/// free query with binary atoms. `D ⊨ q` iff `g` has a triangle.
///
/// The dummy element is `g.n()` (outside the vertex range).
pub fn build(q: &ConjunctiveQuery, g: &Graph) -> Result<Database, ReductionError> {
    if q.atoms().iter().any(|a| a.vars.len() != 2) {
        return Err(ReductionError::NotCyclicBinary);
    }
    if !q.is_self_join_free() {
        return Err(ReductionError::NotSelfJoinFree);
    }
    let h = q.hypergraph();
    let witness =
        cq_core::brault_baron::find_witness(&h).ok_or(ReductionError::NotCyclicBinary)?;
    if witness.kind != cq_core::brault_baron::WitnessKind::Cycle {
        // arity-2 cyclic queries always contain an induced cycle
        return Err(ReductionError::NotCyclicBinary);
    }
    let s = witness.vertices;

    // order the cycle: walk the maximal induced edges
    let cycle_edges: Vec<u64> = h.induced(s).maximal_edges();
    let start = mask_vertices(s).next().unwrap();
    let mut walk: Vec<usize> = vec![start];
    let mut used = vec![false; cycle_edges.len()];
    while walk.len() < s.count_ones() as usize {
        let cur = *walk.last().unwrap();
        let (ei, &e) = cycle_edges
            .iter()
            .enumerate()
            .find(|&(i, &e)| !used[i] && e & (1u64 << cur) != 0)
            .expect("cycle walk must continue");
        used[ei] = true;
        let nxt = mask_vertices(e & !(1u64 << cur)).next().unwrap();
        walk.push(nxt);
    }
    // the cycle edge pairs in walk order
    let l = walk.len();
    let ordered_edges: Vec<u64> =
        (0..l).map(|i| (1u64 << walk[i]) | (1u64 << walk[(i + 1) % l])).collect();

    let n = g.n() as Val;
    let dummy = n;
    let edges = edge_relation(g);
    let equality = Relation::from_pairs((0..n).map(|v| (v, v)));
    let v_cross_dummy = Relation::from_pairs((0..n).map(|v| (v, dummy)));
    let dummy_cross_v = Relation::from_pairs((0..n).map(|v| (dummy, v)));
    let dummy_pair = Relation::from_pairs(vec![(dummy, dummy)]);
    let on_cycle = |v: Var| s & v.mask() != 0;

    let mut db = Database::new();
    for atom in q.atoms() {
        let pair_mask = atom.scope() & s;
        let rel = if let Some(pos) = ordered_edges
            .iter()
            .position(|&e| e == pair_mask && pair_mask.count_ones() == 2)
        {
            // a cycle atom: first three walk edges carry E, the rest are
            // equality. E is symmetric and equality is symmetric, so the
            // atom's orientation does not matter.
            if pos < 3 {
                edges.clone()
            } else {
                equality.clone()
            }
        } else if pair_mask.count_ones() == 2 {
            // both endpoints on the cycle but not a cycle edge — cannot
            // happen for an *induced* cycle
            unreachable!("induced cycle witness has a chord");
        } else if on_cycle(atom.vars[0]) && !on_cycle(atom.vars[1]) {
            v_cross_dummy.clone()
        } else if !on_cycle(atom.vars[0]) && on_cycle(atom.vars[1]) {
            dummy_cross_v.clone()
        } else {
            dummy_pair.clone()
        };
        db.insert(&atom.relation, rel);
    }
    Ok(db)
}

/// End-to-end: decide triangle existence in `g` through evaluating the
/// cyclic query `q` on the constructed database.
pub fn triangle_via_query(
    q: &ConjunctiveQuery,
    g: &Graph,
) -> Result<bool, ReductionError> {
    let db = build(q, g)?;
    Ok(cq_engine::generic_join::decide(&q.boolean_version(), &db)
        .expect("constructed database must bind"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cq_core::query::zoo;
    use cq_data::generate::seeded_rng;
    use cq_problems::triangle::find_triangle_edge_iterator;

    fn check_on_graphs(q: &ConjunctiveQuery) {
        let mut rng = seeded_rng(42);
        for trial in 0..12 {
            let g = Graph::random_gnm(14, 18 + trial * 2, &mut rng);
            let expected = find_triangle_edge_iterator(&g).is_some();
            assert_eq!(
                triangle_via_query(q, &g).unwrap(),
                expected,
                "query {q}, trial {trial}"
            );
        }
    }

    #[test]
    fn triangle_query_itself() {
        check_on_graphs(&zoo::triangle_boolean());
    }

    #[test]
    fn four_cycle() {
        check_on_graphs(&zoo::cycle_boolean(4));
    }

    #[test]
    fn five_cycle() {
        check_on_graphs(&zoo::cycle_boolean(5));
    }

    #[test]
    fn six_cycle() {
        check_on_graphs(&zoo::cycle_boolean(6));
    }

    #[test]
    fn cycle_with_pendant_atoms() {
        // triangle plus pendant edges and a far-away atom
        let q = cq_core::parse_query("q() :- A(x,y), B(y,z), C(z,x), P(x,w), Q(u,t)")
            .unwrap();
        check_on_graphs(&q);
    }

    #[test]
    fn database_size_linear() {
        // |D| = O(m + n): 3 edge relations of size 2m, equality/padding O(n)
        let mut rng = seeded_rng(7);
        let g = Graph::random_gnm(40, 120, &mut rng);
        let q = zoo::cycle_boolean(5);
        let db = build(&q, &g).unwrap();
        // 3 relations of 2m, 2 equality of n
        assert_eq!(db.size(), 3 * 2 * g.m() + 2 * g.n());
    }

    #[test]
    fn rejects_acyclic_and_selfjoin() {
        let g = Graph::from_edges(3, vec![(0, 1)]);
        assert_eq!(
            build(&zoo::path_boolean(3), &g).unwrap_err(),
            ReductionError::NotCyclicBinary
        );
        // self-join cyclic query
        let q = cq_core::parse_query("q() :- R(x,y), R(y,z), R(z,x)").unwrap();
        assert_eq!(build(&q, &g).unwrap_err(), ReductionError::NotSelfJoinFree);
        // non-binary atoms
        let q3 = cq_core::parse_query("q() :- R(x,y,z), S(z,x)").unwrap();
        assert_eq!(build(&q3, &g).unwrap_err(), ReductionError::NotCyclicBinary);
    }

    #[test]
    fn triangle_free_graph_false() {
        let mut rng = seeded_rng(3);
        let g = Graph::random_bipartite(20, 60, &mut rng);
        assert!(!triangle_via_query(&zoo::cycle_boolean(4), &g).unwrap());
    }
}
