//! Regenerate the paper-reproduction tables (EXPERIMENTS.md content).
//!
//! Usage:
//! ```text
//! experiments              # run everything, full sizes
//! experiments --quick      # smaller sizes (CI-friendly)
//! experiments e2 e9        # selected experiments
//! ```

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let selected: Vec<String> =
        args.iter().filter(|a| !a.starts_with("--")).cloned().collect();
    let ids = if selected.is_empty() {
        cq_bench::experiment_ids().iter().map(|s| s.to_string()).collect()
    } else {
        selected
    };

    println!(
        "# Experiment results ({})\n",
        if quick { "quick sizes" } else { "full sizes" }
    );
    for id in ids {
        match cq_bench::run_experiment(&id, quick) {
            Some(table) => {
                println!("{table}");
                println!();
            }
            None => {
                eprintln!(
                    "unknown experiment `{id}`; available: {}",
                    cq_bench::experiment_ids().join(", ")
                );
                std::process::exit(2);
            }
        }
    }
}
