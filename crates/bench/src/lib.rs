//! # cq-bench — the experiment harness
//!
//! One experiment per theorem/example/figure with empirical content in
//! the paper (the paper is a theory survey: its “evaluation section” is
//! its theorems, so DESIGN.md maps experiments E1–E15 to theorems rather
//! than to numbered tables). Each `eNN` function runs a size sweep,
//! fits log–log runtime exponents, and returns a markdown [`Table`];
//! the `experiments` binary prints them, and EXPERIMENTS.md records the
//! paper-vs-measured comparison.
//!
//! All workloads are seeded and deterministic.

pub mod experiments;
pub mod table;
pub mod workloads;

pub use table::Table;

/// Run one experiment by id ("e1".."e17"), `quick` shrinks sizes.
pub fn run_experiment(id: &str, quick: bool) -> Option<Table> {
    let f = experiments::ALL.iter().find(|(name, _)| *name == id)?;
    Some((f.1)(quick))
}

/// All experiment ids in order.
pub fn experiment_ids() -> Vec<&'static str> {
    experiments::ALL.iter().map(|(n, _)| *n).collect()
}
