//! Markdown table rendering for the experiment harness.

use std::fmt;

/// A rendered experiment result.
#[derive(Clone, Debug)]
pub struct Table {
    /// Experiment id, e.g. "E2".
    pub id: String,
    /// Human title.
    pub title: String,
    /// Paper reference (theorem / example / figure).
    pub paper_ref: String,
    /// What the paper predicts (the "shape").
    pub expected: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
    /// Measured summary lines (exponent fits, verdicts).
    pub findings: Vec<String>,
}

impl Table {
    /// Start a table.
    pub fn new(id: &str, title: &str, paper_ref: &str, expected: &str) -> Self {
        Table {
            id: id.to_string(),
            title: title.to_string(),
            paper_ref: paper_ref.to_string(),
            expected: expected.to_string(),
            columns: Vec::new(),
            rows: Vec::new(),
            findings: Vec::new(),
        }
    }

    /// Set the column headers.
    pub fn columns(&mut self, cols: &[&str]) -> &mut Self {
        self.columns = cols.iter().map(|s| s.to_string()).collect();
        self
    }

    /// Append a data row.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.columns.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Append a finding line.
    pub fn finding(&mut self, s: String) -> &mut Self {
        self.findings.push(s);
        self
    }
}

/// Format seconds human-readably.
pub fn fmt_secs(s: f64) -> String {
    if s < 1e-3 {
        format!("{:.1} µs", s * 1e6)
    } else if s < 1.0 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{s:.2} s")
    }
}

/// Format a fitted exponent.
pub fn fmt_exp(e: Option<f64>) -> String {
    match e {
        Some(e) => format!("{e:.2}"),
        None => "n/a".to_string(),
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "### {}: {} [{}]", self.id, self.title, self.paper_ref)?;
        writeln!(f)?;
        writeln!(f, "*Expected shape:* {}", self.expected)?;
        writeln!(f)?;
        writeln!(f, "| {} |", self.columns.join(" | "))?;
        writeln!(
            f,
            "|{}|",
            self.columns.iter().map(|_| "---").collect::<Vec<_>>().join("|")
        )?;
        for row in &self.rows {
            writeln!(f, "| {} |", row.join(" | "))?;
        }
        writeln!(f)?;
        for finding in &self.findings {
            writeln!(f, "* **Measured:** {finding}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_markdown() {
        let mut t = Table::new("E0", "demo", "Thm 0.0", "linear");
        t.columns(&["m", "time"]);
        t.row(vec!["10".into(), "1 ms".into()]);
        t.finding("exponent 1.00".into());
        let s = t.to_string();
        assert!(s.contains("### E0: demo [Thm 0.0]"));
        assert!(s.contains("| m | time |"));
        assert!(s.contains("| 10 | 1 ms |"));
        assert!(s.contains("**Measured:** exponent 1.00"));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_secs(0.5e-4), "50.0 µs");
        assert_eq!(fmt_secs(0.05), "50.00 ms");
        assert_eq!(fmt_secs(2.0), "2.00 s");
        assert_eq!(fmt_exp(Some(1.234)), "1.23");
        assert_eq!(fmt_exp(None), "n/a");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("E0", "demo", "x", "y");
        t.columns(&["a", "b"]);
        t.row(vec!["1".into()]);
    }
}
