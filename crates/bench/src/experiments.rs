//! The seventeen experiments of the reproduction (see DESIGN.md §3).
//!
//! Conventions: every workload is seeded; sizes shrink under `quick`;
//! exponents are least-squares fits of log(time) against log(size) via
//! [`cq_matrix::omega::fit_exponent`]. Timings are single-shot on
//! release builds — exponent fits over 4× size ranges dominate noise.

use crate::table::{fmt_exp, fmt_secs, Table};
use cq_core::query::zoo;
use cq_core::Var;
use cq_data::generate as gen;
use cq_data::{Database, Relation, Val};
use cq_engine::direct_access::{test_prefix, DirectAccess};
use cq_engine::{LexDirectAccess, MaterializedDirectAccess, SumOrderAccess};
use cq_matrix::omega::{ayz_delta, ayz_exponent, fit_exponent, time_secs};
use cq_problems::Graph;
use rand::Rng;

/// All experiments, in order.
/// An experiment: its id and the function running it (`quick` shrinks sizes).
pub type Experiment = (&'static str, fn(bool) -> Table);

pub static ALL: &[Experiment] = &[
    ("e1", e01_yannakakis),
    ("e2", e02_triangle),
    ("e3", e03_cyclic_embedding),
    ("e4", e04_loomis_whitney),
    ("e5", e05_star_counting),
    ("e6", e06_counting_dichotomy),
    ("e7", e07_enumeration),
    ("e8", e08_direct_access),
    ("e9", e09_disruptive_trio),
    ("e10", e10_sum_order),
    ("e11", e11_kclique),
    ("e12", e12_clique_embedding),
    ("e13", e13_star_size),
    ("e14", e14_sparse_bmm),
    ("e15", e15_sat_chain),
    ("e16", e16_index_reuse),
    ("e17", e17_parallel_scaling),
];

fn sweep(quick: bool, full: &[usize], small: &[usize]) -> Vec<usize> {
    if quick {
        small.to_vec()
    } else {
        full.to_vec()
    }
}

// ---------------------------------------------------------------------
// E1 — Theorem 3.1: Yannakakis decides acyclic Boolean queries in Õ(m).
// ---------------------------------------------------------------------
pub fn e01_yannakakis(quick: bool) -> Table {
    let mut t = Table::new(
        "E1",
        "Yannakakis linear-time Boolean evaluation",
        "Theorem 3.1",
        "runtime exponent ≈ 1.0 in m for acyclic Boolean queries",
    );
    t.columns(&["query", "m", "time", "answer"]);
    let sizes =
        sweep(quick, &[100_000, 200_000, 400_000, 800_000], &[20_000, 40_000, 80_000]);
    for (name, k) in [("path-3", 3usize), ("path-5", 5)] {
        let q = zoo::path_boolean(k);
        let mut pts = Vec::new();
        for &m in &sizes {
            let db = gen::path_database(k, m / k, &mut gen::seeded_rng(m as u64));
            let (dt, res) =
                time_secs(|| cq_engine::yannakakis::decide_acyclic(&q, &db).unwrap());
            pts.push((db.size() as f64, dt.max(1e-9)));
            t.row(vec![
                name.into(),
                db.size().to_string(),
                fmt_secs(dt),
                res.to_string(),
            ]);
        }
        t.finding(format!("{name}: fitted exponent {}", fmt_exp(fit_exponent(&pts))));
    }
    t
}

// ---------------------------------------------------------------------
// E2 — Theorem 3.2: the AYZ triangle algorithm vs the m^{3/2} baseline.
// ---------------------------------------------------------------------
pub fn e02_triangle(quick: bool) -> Table {
    let mut t = Table::new(
        "E2",
        "Triangle detection: edge-iterator vs AYZ degree split",
        "Theorem 3.2 / Hypothesis 2",
        "edge-iterator ~ m^1.5; AYZ ~ m^{2ω/(ω+1)} with the effective ω; AYZ wins on dense worst cases",
    );
    let omega_eff = cq_matrix::omega::calibrate_effective_omega(if quick {
        &[128, 192, 256]
    } else {
        &[256, 384, 512, 768]
    })
    .unwrap_or(3.0);
    t.columns(&["m", "Δ (calibrated)", "edge-iterator", "AYZ", "dense BMM"]);
    let sizes =
        sweep(quick, &[20_000, 40_000, 80_000, 160_000], &[5_000, 10_000, 20_000]);
    let (mut p_edge, mut p_ayz, mut p_bmm) = (Vec::new(), Vec::new(), Vec::new());
    for &m in &sizes {
        // triangle-free bipartite worst case: the detector must do all
        // the work and answer "no".
        let n = 2 * (m as f64).sqrt() as usize + 2;
        let g = Graph::random_bipartite(n, m, &mut gen::seeded_rng(m as u64));
        let delta = ayz_delta(m, omega_eff);
        let (t_edge, r1) =
            time_secs(|| cq_problems::triangle::find_triangle_edge_iterator(&g));
        let (t_ayz, r2) =
            time_secs(|| cq_problems::triangle::find_triangle_ayz(&g, delta));
        let (t_bmm, r3) = time_secs(|| cq_problems::triangle::find_triangle_bmm(&g));
        assert!(r1.is_none() && r2.is_none() && r3.is_none());
        p_edge.push((m as f64, t_edge.max(1e-9)));
        p_ayz.push((m as f64, t_ayz.max(1e-9)));
        p_bmm.push((m as f64, t_bmm.max(1e-9)));
        t.row(vec![
            m.to_string(),
            delta.to_string(),
            fmt_secs(t_edge),
            fmt_secs(t_ayz),
            fmt_secs(t_bmm),
        ]);
    }
    t.finding(format!(
        "effective ω = {omega_eff:.2} ⇒ theoretical AYZ exponent 2ω/(ω+1) = {:.2}",
        ayz_exponent(omega_eff)
    ));
    t.finding(format!(
        "fitted exponents: edge-iterator {}, AYZ {}, dense BMM {}",
        fmt_exp(fit_exponent(&p_edge)),
        fmt_exp(fit_exponent(&p_ayz)),
        fmt_exp(fit_exponent(&p_bmm))
    ));
    let wins = p_edge.iter().zip(&p_ayz).filter(|((_, e), (_, a))| a < e).count();
    t.finding(format!("AYZ faster than edge-iterator on {wins}/{} sizes", p_edge.len()));
    t
}

// ---------------------------------------------------------------------
// E3 — Proposition 3.3: triangles embed into every cyclic arity-2 query.
// ---------------------------------------------------------------------
pub fn e03_cyclic_embedding(quick: bool) -> Table {
    let mut t = Table::new(
        "E3",
        "Triangle finding through cyclic queries (C4, C5)",
        "Proposition 3.3",
        "reduction is correct; database size stays O(m + n); evaluating the cyclic query is superlinear while acyclic queries stay linear (E1)",
    );
    t.columns(&["query", "graph m", r"\|D\|", "build", "evaluate", "triangle?"]);
    for cyc in [4usize, 5] {
        // C5's generic-join evaluation is ~m^2.5-shaped (that slope is
        // the measurement); keep its sizes smaller than C4's.
        let sizes = if cyc == 4 {
            sweep(quick, &[10_000, 20_000, 40_000], &[2_000, 4_000, 8_000])
        } else {
            sweep(quick, &[2_000, 4_000, 8_000], &[1_000, 2_000, 4_000])
        };
        let q = zoo::cycle_boolean(cyc);
        let mut pts = Vec::new();
        for &m in &sizes {
            let n = 2 * (m as f64).sqrt() as usize + 2;
            let g = Graph::random_bipartite(n, m, &mut gen::seeded_rng(m as u64));
            let (t_build, db) =
                time_secs(|| cq_reductions::triangle_to_query::build(&q, &g).unwrap());
            let (t_eval, res) =
                time_secs(|| cq_engine::generic_join::decide(&q, &db).unwrap());
            assert!(!res, "bipartite graphs are triangle-free");
            pts.push((db.size() as f64, t_eval.max(1e-9)));
            t.row(vec![
                format!("C{cyc}"),
                m.to_string(),
                db.size().to_string(),
                fmt_secs(t_build),
                fmt_secs(t_eval),
                res.to_string(),
            ]);
        }
        t.finding(format!(
            "C{cyc}: evaluation exponent {} in |D| (superlinear, consistent with the Triangle Hypothesis floor)",
            fmt_exp(fit_exponent(&pts))
        ));
    }
    t
}

// ---------------------------------------------------------------------
// E4 — Example 3.4 / Theorem 3.5: Loomis–Whitney joins at m^{1+1/(k−1)}.
// ---------------------------------------------------------------------
pub fn e04_loomis_whitney(quick: bool) -> Table {
    let mut t = Table::new(
        "E4",
        "Loomis–Whitney joins on AGM-tight instances",
        "Example 3.4 / Theorem 3.5 / Hypothesis 3",
        "generic join enumerates q^LW_k in m^{1+1/(k−1)}: exponents 1.50 (k=3), 1.33 (k=4), 1.25 (k=5), decreasing in k",
    );
    t.columns(&["k", "d", "m", "answers", "time"]);
    for (k, ds_full, ds_quick) in [
        (3usize, vec![40usize, 60, 90, 135], vec![20usize, 30, 45]),
        (4, vec![12, 16, 22, 30], vec![8, 10, 14]),
        (5, vec![6, 8, 10, 13], vec![4, 5, 7]),
    ] {
        let ds = if quick { ds_quick } else { ds_full };
        let q = zoo::loomis_whitney_boolean(k).join_version();
        let mut pts = Vec::new();
        for &d in &ds {
            let rel = gen::full_relation(k - 1, d as Val);
            let db = gen::lw_database(k, &rel);
            let atoms = cq_engine::bind::bind(&q, &db).unwrap();
            let order: Vec<Var> = q.vars().collect();
            let (dt, count) = time_secs(|| {
                let mut c = 0u64;
                cq_engine::generic_join::generic_join_visit(&atoms, &order, &mut |_| {
                    c += 1;
                    true
                });
                c
            });
            assert_eq!(count, (d as u64).pow(k as u32), "AGM-tight instance");
            pts.push((db.size() as f64, dt.max(1e-9)));
            t.row(vec![
                k.to_string(),
                d.to_string(),
                db.size().to_string(),
                count.to_string(),
                fmt_secs(dt),
            ]);
        }
        t.finding(format!(
            "k={k}: fitted exponent {} (theory: {:.2})",
            fmt_exp(fit_exponent(&pts)),
            1.0 + 1.0 / (k as f64 - 1.0)
        ));
    }
    t
}

// ---------------------------------------------------------------------
// E5 — Lemma 3.9 / Corollary 3.11: counting q*_k costs ~ m^k.
// ---------------------------------------------------------------------
pub fn e05_star_counting(quick: bool) -> Table {
    let mut t = Table::new(
        "E5",
        "Counting star queries q*_k: the m^k materialization baseline",
        "Lemma 3.9 / Corollary 3.11 / SETH",
        "the best generic counting algorithm behaves like m^k on hub instances; k′-DS reduces correctly to star counting",
    );
    t.columns(&["k", "m", "count", "time"]);
    for (k, ms_full, ms_quick) in [
        (2usize, vec![400usize, 800, 1600, 3200], vec![200usize, 400, 800]),
        (3, vec![60, 120, 240], vec![30, 60, 120]),
    ] {
        let q = zoo::star_selfjoin(k);
        let mut pts = Vec::new();
        for &m in if quick { &ms_quick } else { &ms_full } {
            // single hub: every pair/triple of left values is an answer
            let db = gen::star_database(k, m, 1, &mut gen::seeded_rng(m as u64));
            // warmup run: the first execution after a large drop pays
            // allocator/page-reclaim costs that would pollute the fit
            std::hint::black_box(
                cq_engine::generic_join::count_distinct(&q, &db).unwrap(),
            );
            let (dt, count) =
                time_secs(|| cq_engine::generic_join::count_distinct(&q, &db).unwrap());
            pts.push((db.size() as f64, dt.max(1e-9)));
            t.row(vec![
                k.to_string(),
                db.size().to_string(),
                count.to_string(),
                fmt_secs(dt),
            ]);
        }
        t.finding(format!(
            "k={k}: fitted exponent {} (conditional floor: k = {k})",
            fmt_exp(fit_exponent(&pts))
        ));
    }
    // reduction correctness spot check
    let mut rng = gen::seeded_rng(5);
    let mut ok = 0;
    let trials = 6;
    for _ in 0..trials {
        let g = Graph::random_gnp(7, 0.3, &mut rng);
        let expected = cq_problems::dominating_set::find_dominating_set(&g, 2).is_some();
        let (got, _, _) = cq_reductions::kds_to_star::kds_via_star_counting(&g, 2, 2);
        ok += usize::from(got == expected);
    }
    t.finding(format!(
        "k′-DS → star-counting reduction correct on {ok}/{trials} random graphs"
    ));
    t
}

// ---------------------------------------------------------------------
// E6 — Theorems 3.8 / 3.12 / 3.13: the counting dichotomy.
// ---------------------------------------------------------------------
pub fn e06_counting_dichotomy(quick: bool) -> Table {
    let mut t = Table::new(
        "E6",
        "Counting dichotomy: linear for free-connex, quadratic beyond",
        "Theorems 3.8, 3.12, 3.13",
        "acyclic join & free-connex queries count in ~m; the acyclic non-free-connex q_mm needs ~m² (SETH floor m^{2−ε})",
    );
    t.columns(&["query", "class", "m", "count", "time"]);

    // linear side: join query + free-connex projection
    let sizes =
        sweep(quick, &[50_000, 100_000, 200_000, 400_000], &[10_000, 20_000, 40_000]);
    let path = zoo::path_join(3);
    let fc =
        cq_core::parse_query("q(x0, x1) :- R1(x0,x1), R2(x1,x2), R3(x2,x3)").unwrap();
    for (label, q, class) in
        [("path-3 join", &path, "acyclic join"), ("path-3 prefix", &fc, "free-connex")]
    {
        let mut pts = Vec::new();
        for &m in &sizes {
            let db = gen::path_database(3, m / 3, &mut gen::seeded_rng(m as u64));
            let (dt, c) = time_secs(|| cq_planner::eval::count(q, &db).unwrap().0);
            pts.push((db.size() as f64, dt.max(1e-9)));
            t.row(vec![
                label.into(),
                class.into(),
                db.size().to_string(),
                c.to_string(),
                fmt_secs(dt),
            ]);
        }
        t.finding(format!("{label}: fitted exponent {}", fmt_exp(fit_exponent(&pts))));
    }

    // hard side: q_mm(x,z) :- R1(x,y), R2(y,z) with tiny y-domain
    let qmm = zoo::matmul_projection();
    let sizes = sweep(quick, &[1_000, 2_000, 4_000, 8_000], &[500, 1_000, 2_000]);
    let mut pts = Vec::new();
    for &m in &sizes {
        let mut rng = gen::seeded_rng(m as u64);
        let mut db = Database::new();
        // x, z range over ~m values; y over 4 hubs → output ~ (m)²-ish
        let r1 = Relation::from_pairs((0..m).map(|i| (i as Val, rng.gen_range(0..4u64))));
        let r2 = Relation::from_pairs((0..m).map(|i| (rng.gen_range(0..4u64), i as Val)));
        db.insert("R1", r1);
        db.insert("R2", r2);
        let (dt, c) = time_secs(|| cq_planner::eval::count(&qmm, &db).unwrap().0);
        pts.push((db.size() as f64, dt.max(1e-9)));
        t.row(vec![
            "q_mm".into(),
            "acyclic, not free-connex".into(),
            db.size().to_string(),
            c.to_string(),
            fmt_secs(dt),
        ]);
    }
    t.finding(format!(
        "q_mm: fitted exponent {} (floor 2.0 under SETH, Thm 3.12)",
        fmt_exp(fit_exponent(&pts))
    ));
    t
}

// ---------------------------------------------------------------------
// E7 — Theorems 3.15–3.17: the enumeration dichotomy.
// ---------------------------------------------------------------------
pub fn e07_enumeration(quick: bool) -> Table {
    let mut t = Table::new(
        "E7",
        "Enumeration: constant delay for free-connex, BMM-hard beyond",
        "Theorems 3.15, 3.16, 3.17 / Hypothesis 1",
        "free-connex q̂*_2: ~m preprocessing, max delay flat in m; non-free-connex q̄*_2 must pay for the whole (quadratic-size) output",
    );
    t.columns(&["query", "m", "preprocessing", "#answers", "max delay", "total enum"]);

    // easy side: q̂*_2
    let sizes = sweep(quick, &[50_000, 100_000, 200_000], &[10_000, 20_000, 40_000]);
    let q = zoo::star_full(2);
    let mut prep_pts = Vec::new();
    for &m in &sizes {
        let db = gen::star_database(2, m, 64, &mut gen::seeded_rng(m as u64));
        let (t_prep, mut e) =
            time_secs(|| cq_engine::Enumerator::preprocess(&q, &db).unwrap());
        let mut max_delay = 0f64;
        let mut last = std::time::Instant::now();
        let mut count = 0u64;
        let cap = 200_000;
        let (t_enum, _) = time_secs(|| {
            e.for_each(|_| {
                let now = std::time::Instant::now();
                max_delay = max_delay.max(now.duration_since(last).as_secs_f64());
                last = now;
                count += 1;
                count < cap
            })
        });
        prep_pts.push((db.size() as f64, t_prep.max(1e-9)));
        t.row(vec![
            "q̂*_2 (free-connex)".into(),
            db.size().to_string(),
            fmt_secs(t_prep),
            format!("{count}{}", if count == cap { "+" } else { "" }),
            fmt_secs(max_delay),
            fmt_secs(t_enum),
        ]);
    }
    t.finding(format!(
        "free-connex preprocessing exponent {} (theory 1.0); max delay stays microseconds across m",
        fmt_exp(fit_exponent(&prep_pts))
    ));

    // hard side: q̄*_2 through materialization
    let qh = zoo::star_selfjoin_free(2);
    let sizes = sweep(quick, &[1_000, 2_000, 4_000, 8_000], &[500, 1_000, 2_000]);
    let mut pts = Vec::new();
    for &m in &sizes {
        let db = gen::star_database(2, m, 8, &mut gen::seeded_rng(m as u64));
        let (dt, rel) = time_secs(|| cq_engine::generic_join::answers(&qh, &db).unwrap());
        pts.push((db.size() as f64, dt.max(1e-9)));
        t.row(vec![
            "q̄*_2 (not free-connex)".into(),
            db.size().to_string(),
            fmt_secs(dt),
            rel.len().to_string(),
            "—".into(),
            fmt_secs(dt),
        ]);
    }
    t.finding(format!(
        "q̄*_2 materialization exponent {} — enumerating it with constant delay would do sparse BMM in Õ(m) (Thm 3.15)",
        fmt_exp(fit_exponent(&pts))
    ));
    t
}

// ---------------------------------------------------------------------
// E8 — Thm 3.18 / Lemmas 3.20, 3.21: direct access + testing.
// ---------------------------------------------------------------------
pub fn e08_direct_access(quick: bool) -> Table {
    let mut t = Table::new(
        "E8",
        "Lexicographic direct access: linear preprocessing, log access",
        "Theorem 3.18 / Corollary 3.22 / Lemmas 3.20, 3.21",
        "build ~m, access ~log m (flat µs); testing via binary search over the array; triangle→testing reduction correct",
    );
    t.columns(&["m", "#answers", "build", "avg access", "avg test_prefix"]);
    let q = zoo::star_full(2);
    let z = q.var_by_name("z").unwrap();
    let x1 = q.var_by_name("x1").unwrap();
    let x2 = q.var_by_name("x2").unwrap();
    let order = vec![z, x1, x2];
    let sizes =
        sweep(quick, &[50_000, 100_000, 200_000, 400_000], &[10_000, 20_000, 40_000]);
    let mut build_pts = Vec::new();
    for &m in &sizes {
        let db = gen::star_database(2, m, 256, &mut gen::seeded_rng(m as u64));
        let (t_build, da) =
            time_secs(|| LexDirectAccess::build(&q, &db, &order).unwrap());
        let n = da.len();
        let probes = 1_000u64;
        let mut rng = gen::seeded_rng(m as u64 + 1);
        let (t_acc, _) = time_secs(|| {
            for _ in 0..probes {
                let i = rng.gen_range(0..n);
                std::hint::black_box(da.access(i));
            }
        });
        let (t_test, _) = time_secs(|| {
            for _ in 0..probes {
                let zz = rng.gen_range(0..256u64);
                let xx = rng.gen_range(0..m as u64);
                std::hint::black_box(test_prefix(&da, &order, &[zz, xx]));
            }
        });
        build_pts.push((db.size() as f64, t_build.max(1e-9)));
        t.row(vec![
            db.size().to_string(),
            n.to_string(),
            fmt_secs(t_build),
            fmt_secs(t_acc / probes as f64),
            fmt_secs(t_test / probes as f64),
        ]);
    }
    t.finding(format!(
        "build exponent {} (theory ~1.0); per-access cost stays in the µs range (log m)",
        fmt_exp(fit_exponent(&build_pts))
    ));
    // Lemma 3.21 correctness
    let mut rng = gen::seeded_rng(77);
    let trials = 8;
    let mut ok = 0;
    for _ in 0..trials {
        let g = Graph::random_gnm(14, 24, &mut rng);
        let expected = cq_problems::triangle::find_triangle_edge_iterator(&g).is_some();
        ok += usize::from(
            cq_reductions::triangle_to_testing::triangle_via_star_testing(&g) == expected,
        );
    }
    t.finding(format!(
        "triangle → star-testing reduction correct on {ok}/{trials} graphs"
    ));
    t
}

// ---------------------------------------------------------------------
// E9 — Lemma 3.23 / Theorem 3.24: the disruptive-trio dichotomy.
// ---------------------------------------------------------------------
pub fn e09_disruptive_trio(quick: bool) -> Table {
    let mut t = Table::new(
        "E9",
        "Direct access for q̂*_2: trio-free vs disrupted orders",
        "Lemma 3.23 / Theorem 3.24",
        "order (z,x1,x2): ~m preprocessing; order (x1,x2,z) has a disruptive trio — the only structure is materialization at ~m² preprocessing",
    );
    t.columns(&["m", "good order build", "bad order build (materialize)", "|q(D)|"]);
    let q = zoo::star_full(2);
    let z = q.var_by_name("z").unwrap();
    let x1 = q.var_by_name("x1").unwrap();
    let x2 = q.var_by_name("x2").unwrap();
    let good = vec![z, x1, x2];
    let bad = vec![x1, x2, z];
    let sizes = sweep(quick, &[1_000, 2_000, 4_000, 8_000], &[500, 1_000, 2_000]);
    let (mut p_good, mut p_bad) = (Vec::new(), Vec::new());
    for &m in &sizes {
        let db = gen::star_database(2, m, 16, &mut gen::seeded_rng(m as u64));
        let (t_good, da) = time_secs(|| LexDirectAccess::build(&q, &db, &good).unwrap());
        assert!(LexDirectAccess::build(&q, &db, &bad).is_err(), "trio must be rejected");
        let (t_bad, mat) =
            time_secs(|| MaterializedDirectAccess::build(&q, &db, &bad).unwrap());
        assert_eq!(da.len(), mat.len());
        p_good.push((db.size() as f64, t_good.max(1e-9)));
        p_bad.push((db.size() as f64, t_bad.max(1e-9)));
        t.row(vec![
            db.size().to_string(),
            fmt_secs(t_good),
            fmt_secs(t_bad),
            da.len().to_string(),
        ]);
    }
    t.finding(format!(
        "fitted exponents: trio-free {} vs disrupted {} — the dichotomy gap of Thm 3.24",
        fmt_exp(fit_exponent(&p_good)),
        fmt_exp(fit_exponent(&p_bad))
    ));
    t
}

// ---------------------------------------------------------------------
// E10 — Lemma 3.25 / Theorem 3.26: sum orders and 3SUM.
// ---------------------------------------------------------------------
pub fn e10_sum_order(quick: bool) -> Table {
    let mut t = Table::new(
        "E10",
        "Sum-order direct access: covering atom vs 3SUM-hard shape",
        "Lemma 3.25 / Theorem 3.26 / Hypothesis 5",
        "single covering atom: ~m log m preprocessing; the two-atom 3SUM query: ~n² materialization; 3SUM reduction agrees with the two-pointer algorithm",
    );
    t.columns(&["instance", "size", "build", "answers"]);
    // easy side
    let q1 = cq_core::parse_query("q(a, b, c) :- R(a, b, c)").unwrap();
    let sizes = sweep(quick, &[100_000, 200_000, 400_000], &[20_000, 40_000, 80_000]);
    let mut p_easy = Vec::new();
    for &m in &sizes {
        let mut rng = gen::seeded_rng(m as u64);
        let rel = gen::random_relation(3, m, (4 * m) as Val, &mut rng);
        let mut db = Database::new();
        db.insert("R", rel);
        let ws: Vec<i64> = (0..4 * m).map(|_| rng.gen_range(0..1000)).collect();
        let wf = |v: Val| ws[v as usize];
        let (dt, da) =
            time_secs(|| SumOrderAccess::build_covering_atom(&q1, &db, &wf).unwrap());
        p_easy.push((m as f64, dt.max(1e-9)));
        t.row(vec![
            "covering atom".into(),
            m.to_string(),
            fmt_secs(dt),
            da.len().to_string(),
        ]);
    }
    t.finding(format!("covering atom exponent {}", fmt_exp(fit_exponent(&p_easy))));

    // hard side: the Lemma 3.25 query on 3SUM instances
    let ns = sweep(quick, &[400, 800, 1600], &[100, 200, 400]);
    let mut p_hard = Vec::new();
    for &n in &ns {
        let mut rng = gen::seeded_rng(n as u64);
        let inst = cq_problems::three_sum::ThreeSumInstance::random(
            n, 1_000_000, false, &mut rng,
        );
        let red = cq_reductions::three_sum_to_sum_da::build(&inst);
        let wf = |v: Val| red.weights[v as usize];
        let (dt, da) = time_secs(|| {
            SumOrderAccess::build_materialized(&red.query, &red.db, &wf).unwrap()
        });
        p_hard.push((n as f64, dt.max(1e-9)));
        t.row(vec![
            "3SUM query (no covering atom)".into(),
            format!("n={n} (|D|={})", red.db.size()),
            fmt_secs(dt),
            da.len().to_string(),
        ]);
    }
    t.finding(format!(
        "3SUM-shape exponent {} in n (floor 2−ε under Hypothesis 5)",
        fmt_exp(fit_exponent(&p_hard))
    ));
    // reduction correctness
    let mut rng = gen::seeded_rng(123);
    let trials = 10;
    let mut ok = 0;
    for i in 0..trials {
        let inst = cq_problems::three_sum::ThreeSumInstance::random(
            20,
            40,
            i % 2 == 0,
            &mut rng,
        );
        let expected = cq_problems::three_sum::three_sum_sorted(&inst).is_some();
        ok += usize::from(
            cq_reductions::three_sum_to_sum_da::three_sum_via_sum_order_da(&inst)
                == expected,
        );
    }
    t.finding(format!(
        "3SUM → sum-order DA reduction correct on {ok}/{trials} instances"
    ));
    t
}

// ---------------------------------------------------------------------
// E11 — Theorem 4.1: k-clique via triangles (Nešetřil–Poljak).
// ---------------------------------------------------------------------
pub fn e11_kclique(quick: bool) -> Table {
    let mut t = Table::new(
        "E11",
        "k-clique: backtracking vs the triangle (Nešetřil–Poljak) route",
        "Theorem 4.1",
        "the derived graph has O(n^{⌈k/3⌉}) vertices and its triangles are exactly the k-cliques; with fast MM the exponent drops below k (here: word-parallel BMM gives the constant-factor form of that win)",
    );
    t.columns(&[
        "k",
        "n",
        "derived vertices",
        "backtracking",
        "via triangle",
        "k-clique?",
    ]);
    // complete (k−1)-partite graphs: dense and K_k-free — the worst case
    // for detection (answer "no" with maximum density).
    for k in [4usize, 5, 6] {
        let parts = k - 1;
        let ns = if quick { vec![12, 18, 24] } else { vec![24, 36, 48] };
        let (mut p_bt, mut p_np) = (Vec::new(), Vec::new());
        for &n in &ns {
            let n = n - n % parts;
            let per = n / parts;
            let mut edges = Vec::new();
            for pa in 0..parts {
                for pb in (pa + 1)..parts {
                    for i in 0..per {
                        for j in 0..per {
                            edges.push(((pa * per + i) as u32, (pb * per + j) as u32));
                        }
                    }
                }
            }
            let g = Graph::from_edges(n, edges);
            let ds = cq_reductions::clique_to_triangle::derived_size(&g, k);
            let (t_bt, r1) =
                time_secs(|| cq_problems::clique::find_k_clique_backtracking(&g, k));
            let (t_np, r2) = time_secs(|| cq_problems::clique::find_k_clique_np(&g, k));
            assert!(r1.is_none() && r2.is_none(), "complete (k−1)-partite is K_k-free");
            p_bt.push((n as f64, t_bt.max(1e-9)));
            p_np.push((n as f64, t_np.max(1e-9)));
            t.row(vec![
                k.to_string(),
                n.to_string(),
                ds.n_vertices.to_string(),
                fmt_secs(t_bt),
                fmt_secs(t_np),
                "no".into(),
            ]);
        }
        t.finding(format!(
            "k={k}: fitted exponents in n — backtracking {}, triangle route {}",
            fmt_exp(fit_exponent(&p_bt)),
            fmt_exp(fit_exponent(&p_np))
        ));
    }
    t
}

// ---------------------------------------------------------------------
// E12 — Example 4.2/4.3 + Figure 1: clique embeddings.
// ---------------------------------------------------------------------
pub fn e12_clique_embedding(quick: bool) -> Table {
    let mut t = Table::new(
        "E12",
        "K5 → C5 embedding: min-weight clique via tropical cycle aggregation",
        "Example 4.2 / Example 4.3 / Figure 1 / Hypothesis 7",
        "database size Θ(n⁴) per relation (weak edge depth 4, power 5/4); aggregation result equals brute-force Min-Weight-5-Clique",
    );
    t.columns(&[
        "n",
        r"\|D\|",
        "build",
        "aggregate (tropical)",
        "brute force",
        "min weight",
    ]);
    let ns = if quick { vec![6usize, 7, 8] } else { vec![7usize, 8, 9, 10] };
    let mut agree = 0;
    for &n in &ns {
        let mut rng = gen::seeded_rng(n as u64);
        let g = cq_problems::weighted_clique::WeightedGraph::random_complete(
            n, 100, &mut rng,
        );
        let (t_build, inst) =
            time_secs(|| cq_reductions::clique_embedding_db::build(5, &g));
        let (t_agg, min_via_cycle) = time_secs(|| {
            cq_reductions::clique_embedding_db::min_weight_clique_via_cycle(5, &g)
        });
        let (t_bf, min_bf) = time_secs(|| {
            cq_problems::weighted_clique::min_weight_k_clique(&g, 5).map(|(w, _)| w)
        });
        agree += usize::from(min_via_cycle == min_bf);
        t.row(vec![
            n.to_string(),
            inst.db.size().to_string(),
            fmt_secs(t_build),
            fmt_secs(t_agg),
            fmt_secs(t_bf),
            format!("{min_via_cycle:?}"),
        ]);
    }
    t.finding(format!(
        "cycle-aggregation minimum equals brute force on {agree}/{} sizes",
        ns.len()
    ));
    let (h, emb) = cq_core::embedding::k5_into_c5();
    t.finding(format!(
        "Figure 1 reproduced in code: max weak edge depth {} ⇒ |relation| ≤ n⁴, embedding power {} ⇒ conditional floor m^1.25",
        emb.max_weak_edge_depth(&h),
        emb.power(&h)
    ));
    t
}

// ---------------------------------------------------------------------
// E13 — Theorem 4.6: quantified star size drives the counting exponent.
// ---------------------------------------------------------------------
pub fn e13_star_size(quick: bool) -> Table {
    let mut t = Table::new(
        "E13",
        "Quantified star size: counting cost grows with the star size k",
        "Theorem 4.6 / §4.4",
        "computed star sizes match the paper's examples; measured counting time at fixed m grows sharply with k (the m^k family)",
    );
    t.columns(&["query", "star size", "m", "count time"]);
    let m = if quick { 300 } else { 600 };
    for k in 1..=3usize {
        let q = zoo::star_selfjoin_free(k);
        let s = cq_core::star_size::quantified_star_size(&q);
        assert_eq!(s, k);
        let db = gen::star_database(k, m, 1, &mut gen::seeded_rng(k as u64));
        let (dt, _) = time_secs(|| cq_planner::eval::count(&q, &db).unwrap().0);
        t.row(vec![
            format!("q̄*_{k}"),
            s.to_string(),
            db.size().to_string(),
            fmt_secs(dt),
        ]);
    }
    // structural spot checks from the paper
    for (src, expect) in [
        ("q(x, z) :- R1(x, y), R2(y, z)", 2usize),
        ("q(x0, x1) :- R1(x0, x1), R2(x1, x2)", 1),
        ("q(x1,x2,x3) :- R1(x1,y1), R2(y1,y2), R3(x2,y2), R4(y2,y3), R5(x3,y3)", 3),
    ] {
        let q = cq_core::parse_query(src).unwrap();
        let s = cq_core::star_size::quantified_star_size(&q);
        assert_eq!(s, expect);
        t.row(vec![src.into(), s.to_string(), "—".into(), "—".into()]);
    }
    t.finding("star sizes match the paper's examples; counting time grows superlinearly in k at fixed m".into());
    t
}

// ---------------------------------------------------------------------
// E14 — §2.3 / Hypothesis 1: sparse Boolean matrix multiplication.
// ---------------------------------------------------------------------
pub fn e14_sparse_bmm(quick: bool) -> Table {
    let mut t = Table::new(
        "E14",
        "Sparse BMM: hash SpGEMM vs the heavy/light output-sensitive split",
        "§2.3 / Hypothesis 1",
        "on hub-structured inputs plain SpGEMM pays the hubs' quadratic flops; the heavy/light split (Δ = m^{1/3}) reroutes hubs through dense word-parallel BMM and wins; both stay superlinear (the hypothesis floor is m^{4/3} at ω = 2)",
    );
    t.columns(&["m (nnz)", "spgemm", "heavy/light (Δ=m^⅓)", "output nnz"]);
    use cq_matrix::sparse::{default_delta, spgemm, spgemm_heavy_light};
    use cq_matrix::SparseBoolMat;

    // hub-structured inputs: √m hub middle indices with high in/out degree
    fn hubby(m: usize, seed: u64) -> (SparseBoolMat, SparseBoolMat) {
        let n = (2.0 * (m as f64).sqrt()) as usize + 2;
        let hubs = ((m as f64).powf(1.0 / 3.0) as usize).max(1);
        let mut rng = gen::seeded_rng(seed);
        let mut ea = Vec::with_capacity(m);
        let mut eb = Vec::with_capacity(m);
        for _ in 0..m / 2 {
            // hub column in A, hub row in B
            ea.push((rng.gen_range(0..n as u32), rng.gen_range(0..hubs as u32)));
            eb.push((rng.gen_range(0..hubs as u32), rng.gen_range(0..n as u32)));
        }
        for _ in 0..m / 2 {
            ea.push((rng.gen_range(0..n as u32), rng.gen_range(0..n as u32)));
            eb.push((rng.gen_range(0..n as u32), rng.gen_range(0..n as u32)));
        }
        (SparseBoolMat::from_entries(n, n, ea), SparseBoolMat::from_entries(n, n, eb))
    }

    let sizes = sweep(quick, &[10_000, 20_000, 40_000, 80_000], &[2_000, 4_000, 8_000]);
    let (mut p_sp, mut p_hl) = (Vec::new(), Vec::new());
    for &m in &sizes {
        let (a, b) = hubby(m, m as u64);
        let (t_sp, c1) = time_secs(|| spgemm(&a, &b));
        let delta = default_delta(m);
        let (t_hl, (c2, _)) = time_secs(|| spgemm_heavy_light(&a, &b, delta));
        assert_eq!(c1, c2);
        p_sp.push((m as f64, t_sp.max(1e-9)));
        p_hl.push((m as f64, t_hl.max(1e-9)));
        t.row(vec![m.to_string(), fmt_secs(t_sp), fmt_secs(t_hl), c1.nnz().to_string()]);
    }
    t.finding(format!(
        "fitted exponents: spgemm {}, heavy/light {}",
        fmt_exp(fit_exponent(&p_sp)),
        fmt_exp(fit_exponent(&p_hl))
    ));

    // Δ ablation at a fixed size
    let m = if quick { 8_000 } else { 40_000 };
    let (a, b) = hubby(m, 999);
    let mut ablation = Vec::new();
    for delta in [
        1usize,
        default_delta(m) / 4 + 1,
        default_delta(m),
        default_delta(m) * 4,
        usize::MAX,
    ] {
        let (dt, _) = time_secs(|| spgemm_heavy_light(&a, &b, delta));
        ablation.push(format!(
            "Δ={}: {}",
            if delta == usize::MAX { "∞".into() } else { delta.to_string() },
            fmt_secs(dt)
        ));
    }
    t.finding(format!("Δ ablation at m={m}: {}", ablation.join(", ")));

    // dense calibration
    let sizes: &[usize] = if quick { &[128, 256] } else { &[256, 512, 1024] };
    let mut cal = Vec::new();
    for &n in sizes {
        let mut rng = gen::seeded_rng(n as u64);
        let x = cq_matrix::BitMatrix::random(n, n, 0.5, &mut rng);
        let y = cq_matrix::BitMatrix::random(n, n, 0.5, &mut rng);
        let (t_row, _) = time_secs(|| cq_matrix::dense::multiply_rowwise(&x, &y));
        let (t_4r, _) =
            time_secs(|| cq_matrix::four_russians::multiply_four_russians(&x, &y, 0));
        let (t_str, _) =
            time_secs(|| cq_matrix::strassen::bool_multiply_strassen(&x, &y, 64));
        cal.push(format!(
            "n={n}: rowwise {}, four-russians {}, strassen {}",
            fmt_secs(t_row),
            fmt_secs(t_4r),
            fmt_secs(t_str)
        ));
    }
    t.finding(format!("dense BMM calibration: {}", cal.join("; ")));
    t
}

// ---------------------------------------------------------------------
// E15 — Theorem 3.10: SAT → k-DS accounting.
// ---------------------------------------------------------------------
pub fn e15_sat_chain(quick: bool) -> Table {
    let mut t = Table::new(
        "E15",
        "SAT → k-Dominating-Set (Pătraşcu–Williams), end to end",
        "Theorem 3.10",
        "reduction is correct against DPLL; the instance has k·2^{n/k} + #clauses + k vertices — the accounting behind the SETH transfer of Lemma 3.9",
    );
    t.columns(&["n vars", "clauses", "k", "graph vertices", "SAT?", "k-DS agrees"]);
    let mut rng = gen::seeded_rng(15);
    let trials = if quick { 6 } else { 12 };
    let mut all_ok = true;
    for i in 0..trials {
        let n = 4 + i % 3;
        let m = 6 + 2 * (i % 5);
        let cnf = cq_problems::sat::Cnf::random_ksat(n, m, 3, &mut rng);
        let expected = cq_problems::sat::dpll(&cnf).is_some();
        let k = 2 + i % 2;
        let inst = cq_reductions::sat_to_kds::build(&cnf, k);
        let got =
            cq_problems::dominating_set::find_dominating_set(&inst.graph, k).is_some();
        all_ok &= got == expected;
        t.row(vec![
            n.to_string(),
            m.to_string(),
            k.to_string(),
            inst.graph.n().to_string(),
            expected.to_string(),
            (got == expected).to_string(),
        ]);
    }
    t.finding(format!("reduction agreed with DPLL on all {trials} instances: {all_ok}"));
    t
}

// ---------------------------------------------------------------------
// E16 — warm-path evaluation: the per-database index catalog.
// ---------------------------------------------------------------------
pub fn e16_index_reuse(quick: bool) -> Table {
    use cq_data::IndexCatalog;
    use cq_planner::{EvalCtx, Planner, Task};

    let mut t = Table::new(
        "E16",
        "Repeated-query evaluation: cold vs warm index catalog",
        "preprocessing/enumeration split (Thm 3.17 / §3.4 operationalized)",
        "with a warm per-database catalog, repeated evaluation is index-build-free: statistics, sorted views, hash indexes, and preprocessing artifacts are reused, so the warm path pays for the join/walk only",
    );
    t.columns(&["query", "task", "m", "cold", "warm", "speedup"]);

    let scale = if quick { 1 } else { 4 };
    let mut rng = gen::seeded_rng(16);
    let path_m = 8_000 * scale;
    let mut path_db = gen::path_database(3, path_m, &mut rng);
    let head = cq_data::Relation::from_row_slices(
        2,
        path_db.expect("R1").iter().take(path_m / 10),
    );
    path_db.insert("R1", head);
    let shapes: Vec<(&str, cq_core::ConjunctiveQuery, Task, Database)> = vec![
        ("path-3 join", zoo::path_join(3), Task::Answers, path_db.clone()),
        ("path-3 boolean", zoo::path_boolean(3), Task::Decide, path_db),
        (
            "triangle",
            zoo::triangle_boolean(),
            Task::Decide,
            gen::triangle_database(&gen::random_pairs(10_000 * scale, 800, &mut rng)),
        ),
        (
            "star-2 count",
            zoo::star_selfjoin_free(2),
            Task::Count,
            gen::star_database(2, 1_500 * scale, 64, &mut rng),
        ),
    ];

    let mut speedups: Vec<(String, f64)> = Vec::new();
    for (name, q, task, db) in shapes {
        let mut planner = Planner::new();
        let run = |planner: &mut Planner, cat: &IndexCatalog| {
            let ctx = EvalCtx::new().with_catalog(cat);
            match task {
                Task::Decide => ctx.decide(planner, &q, &db).unwrap().0 as u64,
                Task::Count => ctx.count(planner, &q, &db).unwrap().0,
                Task::Answers => ctx.answers(planner, &q, &db).unwrap().0.len() as u64,
                Task::Access => unreachable!(),
            }
        };
        // settle the plan cache, then best-of-k both ways
        run(&mut planner, &IndexCatalog::new());
        let reps = 5;
        let mut cold = f64::INFINITY;
        for _ in 0..reps {
            let (dt, _) = time_secs(|| {
                let cat = IndexCatalog::new();
                run(&mut planner, &cat)
            });
            cold = cold.min(dt.max(1e-9));
        }
        let warm_cat = IndexCatalog::new();
        run(&mut planner, &warm_cat);
        let mut warm = f64::INFINITY;
        for _ in 0..reps {
            let (dt, _) = time_secs(|| run(&mut planner, &warm_cat));
            warm = warm.min(dt.max(1e-9));
        }
        let speedup = cold / warm;
        speedups.push((name.to_string(), speedup));
        t.row(vec![
            name.into(),
            format!("{task}"),
            db.size().to_string(),
            fmt_secs(cold),
            fmt_secs(warm),
            format!("{speedup:.1}×"),
        ]);
    }
    let line = speedups
        .iter()
        .map(|(n, s)| format!("{n} {s:.1}×"))
        .collect::<Vec<_>>()
        .join(", ");
    t.finding(format!("warm/cold speedups: {line}"));
    t.finding(
        "the warm path acquires every index through the per-database catalog; \
         generation stamps guarantee no stale index is ever served"
            .into(),
    );
    t
}

// ---------------------------------------------------------------------
// E17 — batch evaluation: threads × cold/warm throughput over one
// shared database.
// ---------------------------------------------------------------------

/// The cold rung of E17: one planner pass, then scoped workers pulling
/// items off a shared cursor — but every execution runs against a
/// throwaway catalog, re-paying all preprocessing per item.
fn parallel_cold_batch(
    items: &[(&cq_core::ConjunctiveQuery, cq_planner::Task)],
    db: &Database,
    workers: usize,
) -> usize {
    use std::sync::atomic::{AtomicUsize, Ordering};
    let stats = cq_data::DataStats::collect(db);
    let mut planner = cq_planner::Planner::new();
    let plans: Vec<_> =
        items.iter().map(|(q, task)| planner.plan(q, *task, &stats)).collect();
    let cursor = AtomicUsize::new(0);
    let done = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..workers.max(1) {
            s.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let (q, _) = items[i];
                std::hint::black_box(cq_planner::execute(&plans[i], q, db).unwrap());
                done.fetch_add(1, Ordering::Relaxed);
            });
        }
    });
    done.load(Ordering::Relaxed)
}

pub fn e17_parallel_scaling(quick: bool) -> Table {
    use cq_core::ConjunctiveQuery;
    use cq_planner::{eval, Task};

    let mut t = Table::new(
        "E17",
        "Batch evaluation over one shared database: threads × cold/warm throughput",
        "preprocessing/enumeration split under concurrency (Thm 3.17 / §3.4 operationalized)",
        "all workers share one internally-locked catalog and no lock is held across an execution, so warm batch throughput scales with available cores; the cold path re-pays every index build per item at any thread count",
    );
    t.columns(&[
        "workload",
        "threads",
        "warm batch",
        "warm q/s",
        "cold batch",
        "cold q/s",
    ]);

    let scale = if quick { 1 } else { 4 };
    let batch = if quick { 16 } else { 32 };
    let mut rng = gen::seeded_rng(17);
    let path_m = 8_000 * scale;
    let mut path_db = gen::path_database(3, path_m, &mut rng);
    let head =
        Relation::from_row_slices(2, path_db.expect("R1").iter().take(path_m / 10));
    path_db.insert("R1", head);
    let shapes: Vec<(&str, ConjunctiveQuery, Task, Database)> = vec![
        ("path-3 answers", zoo::path_join(3), Task::Answers, path_db),
        (
            "triangle decide",
            zoo::triangle_boolean(),
            Task::Decide,
            gen::triangle_database(&gen::random_pairs(10_000 * scale, 800, &mut rng)),
        ),
    ];

    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut scaling: Vec<String> = Vec::new();
    for (name, q, task, db) in &shapes {
        let items: Vec<(&ConjunctiveQuery, Task)> = vec![(q, *task); batch];
        // settle the plan cache and warm the registry catalog
        eval::batch_tasks_with_workers(items.iter().copied(), db, 1);
        let mut warm_1thread = f64::NAN;
        let mut warm_max = f64::INFINITY;
        for threads in [1usize, 2, 4, 8] {
            let (t_warm, _) = time_secs(|| {
                eval::batch_tasks_with_workers(items.iter().copied(), db, threads)
            });
            let t_warm = t_warm.max(1e-9);
            let (t_cold, n) = time_secs(|| parallel_cold_batch(&items, db, threads));
            let t_cold = t_cold.max(1e-9);
            assert_eq!(n, batch, "cold batch must complete every item");
            if threads == 1 {
                warm_1thread = t_warm;
            }
            warm_max = warm_max.min(t_warm);
            t.row(vec![
                (*name).into(),
                threads.to_string(),
                fmt_secs(t_warm),
                format!("{:.0}", batch as f64 / t_warm),
                fmt_secs(t_cold),
                format!("{:.0}", batch as f64 / t_cold),
            ]);
        }
        scaling.push(format!("{name} {:.1}×", warm_1thread / warm_max));
    }
    t.finding(format!(
        "best warm speedup over 1 thread: {} (available_parallelism = {cores} — \
         thread counts beyond the core count cannot scale)",
        scaling.join(", ")
    ));
    t.finding(
        "the batch shares one catalog and one planner pass; workers pull items \
         off an atomic cursor and never hold a lock while executing"
            .into(),
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every experiment must run in quick mode and produce a non-empty
    /// table (this is the harness's own smoke test). The full sweep only
    /// runs under optimization — debug builds check a single cheap
    /// experiment so `cargo test` stays fast.
    #[test]
    fn all_experiments_run_quick() {
        let to_run: &[Experiment] = if cfg!(debug_assertions) { &ALL[..1] } else { ALL };
        for (name, f) in to_run {
            let table = f(true);
            assert!(!table.rows.is_empty(), "{name} produced no rows");
            assert!(!table.findings.is_empty(), "{name} produced no findings");
            assert!(!table.to_string().is_empty());
        }
    }

    #[test]
    fn registry_is_complete() {
        assert_eq!(ALL.len(), 17);
        let ids: Vec<&str> = ALL.iter().map(|(n, _)| *n).collect();
        assert_eq!(ids[0], "e1");
        assert_eq!(ids[16], "e17");
    }
}
