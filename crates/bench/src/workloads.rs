//! Shared benchmark workloads.
//!
//! The `index_reuse` (cold vs. warm) and `parallel_scaling` (threads ×
//! warm throughput) criterion benches are compared against each other
//! by the acceptance criteria, so they must run the *same* headline
//! workloads — defined once here so the copies cannot drift.

use cq_core::query::zoo;
use cq_core::ConjunctiveQuery;
use cq_data::generate as gen;
use cq_data::Database;
use cq_planner::Task;

/// A path-3 database with a selective head: R1 keeps a slice of its
/// rows, so `|q(D)| ≪ m` and evaluation is preprocessing-dominated —
/// the output-sensitive regime the preprocessing/enumeration split is
/// about.
pub fn selective_path3(
    rows: usize,
    head: usize,
    rng: &mut rand::rngs::StdRng,
) -> Database {
    let mut db = gen::path_database(3, rows, rng);
    let r1 = db.expect("R1");
    let r1 = cq_data::Relation::from_row_slices(2, r1.iter().take(head));
    db.insert("R1", r1);
    db
}

/// The two headline shapes of the catalog acceptance criteria:
/// `path3_answers` (selective path-3 join, answer production) and
/// `triangle_decide` (Boolean triangle). Seeded identically wherever
/// they are benched.
pub fn headline_shapes() -> Vec<(&'static str, ConjunctiveQuery, Task, Database)> {
    let mut rng = gen::seeded_rng(42);
    vec![
        (
            "path3_answers",
            zoo::path_join(3),
            Task::Answers,
            selective_path3(30_000, 3_000, &mut rng),
        ),
        (
            "triangle_decide",
            zoo::triangle_boolean(),
            Task::Decide,
            gen::triangle_database(&gen::random_pairs(30_000, 1_000, &mut rng)),
        ),
    ]
}
