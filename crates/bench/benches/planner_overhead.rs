//! Planner dispatch-cost benchmarks: what does routing through
//! `cq-planner` cost on top of calling the engine directly?
//!
//! Three rungs per query shape:
//!   * `cold_plan`     — classification + canonicalization + choice
//!     (fresh planner every iteration: no cache effects);
//!   * `cache_hit`     — canonicalization + cache lookup + choice
//!     (warm planner: the steady-state dispatch cost);
//!   * `plan_uncached` — classification + choice without any cache
//!     bookkeeping (the floor planning can reach without shape reuse).
//!
//! Also measures the end-to-end dispatch (`plan + execute`, warm cache)
//! against the direct engine call on a small database, so regressions
//! in dispatch cost show up in wall-clock context.

use cq_core::query::zoo;
use cq_core::ConjunctiveQuery;
use cq_data::generate as gen;
use cq_data::{DataStats, Database};
use cq_planner::{execute, Planner, Task};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn shapes() -> Vec<(&'static str, ConjunctiveQuery, Task)> {
    vec![
        ("path3_decide", zoo::path_boolean(3), Task::Decide),
        ("path3_count", zoo::path_join(3), Task::Count),
        ("triangle_decide", zoo::triangle_boolean(), Task::Decide),
        ("star3_count", zoo::star_selfjoin_free(3), Task::Count),
        ("matmul_answers", zoo::matmul_projection(), Task::Answers),
        ("lw4_decide", zoo::loomis_whitney_boolean(4), Task::Decide),
    ]
}

fn db_for(q: &ConjunctiveQuery, rows: usize) -> Database {
    let mut rng = gen::seeded_rng(42);
    let mut db = Database::new();
    for atom in q.atoms() {
        db.insert(
            &atom.relation,
            gen::random_relation(atom.vars.len(), rows, 64, &mut rng),
        );
    }
    db
}

/// Planning cost alone: cold (fresh planner) vs. cache hit (warm
/// planner) vs. the uncached classification floor.
fn bench_planning_cost(c: &mut Criterion) {
    let mut g = c.benchmark_group("planner_overhead");
    for (name, q, task) in shapes() {
        let db = db_for(&q, 1_000);
        let stats = DataStats::collect(&db);

        g.bench_function(format!("{name}/cold_plan"), |b| {
            b.iter(|| {
                let mut p = Planner::new();
                black_box(p.plan(black_box(&q), task, &stats))
            })
        });

        let mut warm = Planner::new();
        warm.plan(&q, task, &stats);
        g.bench_function(format!("{name}/cache_hit"), |b| {
            b.iter(|| black_box(warm.plan(black_box(&q), task, &stats)))
        });

        g.bench_function(format!("{name}/plan_uncached"), |b| {
            b.iter(|| black_box(Planner::plan_uncached(black_box(&q), task, &stats)))
        });
    }
    g.finish();
}

/// End-to-end dispatch: planner (plan + execute, warm cache) vs. the
/// direct engine call the plan resolves to.
fn bench_dispatch_end_to_end(c: &mut Criterion) {
    let mut g = c.benchmark_group("planner_dispatch");
    let rows = 2_000;
    let mut planner = Planner::new();

    // acyclic decision: planner vs. yannakakis directly
    let q = zoo::path_boolean(3);
    let db = db_for(&q, rows);
    let stats = DataStats::collect(&db);
    planner.plan(&q, Task::Decide, &stats);
    g.bench_function("path3_decide/via_planner", |b| {
        b.iter(|| {
            let plan = planner.plan(&q, Task::Decide, &stats);
            execute(&plan, &q, &db).unwrap()
        })
    });
    g.bench_function("path3_decide/direct_engine", |b| {
        b.iter(|| cq_engine::yannakakis::decide_acyclic(&q, &db).unwrap())
    });

    // acyclic join counting: planner vs. counting DP directly
    let q = zoo::path_join(3);
    let db = db_for(&q, rows);
    let stats = DataStats::collect(&db);
    planner.plan(&q, Task::Count, &stats);
    g.bench_function("path3_count/via_planner", |b| {
        b.iter(|| {
            let plan = planner.plan(&q, Task::Count, &stats);
            execute(&plan, &q, &db).unwrap()
        })
    });
    g.bench_function("path3_count/direct_engine", |b| {
        b.iter(|| cq_engine::count::count_acyclic_join(&q, &db).unwrap())
    });

    // cyclic decision: planner vs. generic join directly
    let q = zoo::triangle_boolean();
    let db = db_for(&q, rows);
    let stats = DataStats::collect(&db);
    planner.plan(&q, Task::Decide, &stats);
    g.bench_function("triangle_decide/via_planner", |b| {
        b.iter(|| {
            let plan = planner.plan(&q, Task::Decide, &stats);
            execute(&plan, &q, &db).unwrap()
        })
    });
    g.bench_function("triangle_decide/direct_engine", |b| {
        b.iter(|| cq_engine::generic_join::decide(&q, &db).unwrap())
    });

    // statistics collection, the per-database planning input
    g.bench_function("stats_collect/m2000", |b| {
        b.iter(|| DataStats::collect(black_box(&db)))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(800));
    targets = bench_planning_cost, bench_dispatch_end_to_end
}
criterion_main!(benches);
