//! What does streaming buy on the answer path?
//!
//! The wire's `ANSWERS` is pull-driven: the session hands the
//! connection loop an `AnswerFlow` and rows leave in bounded chunks of
//! `STREAM_CHUNK_ROWS`, so the first row ships after preprocessing —
//! not after the whole result exists. This bench pins both halves of
//! that claim on a free-connex join with a large output:
//!
//!   * `first_row_*` — time to the first answer row: a `CURSOR` +
//!     `FETCH 1` against the streaming path vs. a full materialized
//!     `eval::answers` (which must build every row first);
//!   * `drain_*` — shipping the entire result: the chunked wire drain
//!     (`drain_flow` into a byte sink) vs. materialize-then-render.
//!
//! The drain leg also meters the sink: the largest single write must
//! stay bounded by one chunk, whatever the result size — the memory
//! bound the server tests assert, re-checked here on the bench shape.

use cq_core::parse_query;
use cq_data::{Database, Relation, Val};
use cq_planner::eval;
use cq_server::server::{Action, Session, STREAM_CHUNK_ROWS};
use cq_server::state::ServerState;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::io::Write;
use std::sync::Arc;
use std::time::Instant;

/// `q(x, z) :- R(x, y), S(y, z)` with R = N×{0}, S = {0}×N: a
/// free-connex 2-path whose output is N² rows from 2N input rows.
const N: u64 = 200; // 40,000 answer rows
const QUERY: &str = "q(x, z) :- R(x, y), S(y, z)";

fn session_with_data() -> Session {
    let state = Arc::new(ServerState::new());
    let mut s = Session::new(Arc::clone(&state));
    s.handle_line("CREATE DB bench");
    s.handle_line("USE bench");
    for (rel, flip) in [("R", false), ("S", true)] {
        s.handle_line(&format!("LOAD {rel} 2"));
        for i in 0..N {
            if flip {
                s.handle_line(&format!("0 {i}"));
            } else {
                s.handle_line(&format!("{i} 0"));
            }
        }
        s.handle_line("END");
    }
    // warm the plan cache and the tenant's index catalog
    let r = s.handle_line(&format!("COUNT {QUERY}")).expect("warm query");
    assert!(r.is_ok(), "{}", r.terminal);
    s
}

fn mirror_db() -> Database {
    let mut db = Database::new();
    db.insert("R", Relation::from_pairs((0..N).map(|i| (i, 0)).collect::<Vec<_>>()));
    db.insert("S", Relation::from_pairs((0..N).map(|i| (0, i)).collect::<Vec<_>>()));
    db
}

/// A write sink that counts bytes and tracks the largest single write
/// — the per-connection buffering high-water mark.
#[derive(Default)]
struct ChunkMeter {
    bytes: usize,
    max_write: usize,
}

impl Write for ChunkMeter {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.bytes += buf.len();
        self.max_write = self.max_write.max(buf.len());
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// One full streamed drain through the wire path; returns the meter.
fn drain_streamed(s: &mut Session) -> ChunkMeter {
    let action =
        s.handle_action(format!("ANSWERS {QUERY}").as_bytes()).expect("ANSWERS replies");
    let Action::Stream(flow) = action else {
        panic!("ANSWERS must stream on this plan");
    };
    let mut meter = ChunkMeter::default();
    s.drain_flow(*flow, &mut meter).expect("sink never fails");
    meter
}

fn bench_streaming_answers(c: &mut Criterion) {
    let mut session = session_with_data();
    let db = mirror_db();
    let q = parse_query(QUERY).unwrap();

    let mut group = c.benchmark_group("streaming_answers");
    group.bench_function("first_row_streamed", |b| {
        b.iter(|| {
            let r = session.handle_line(&format!("CURSOR ANSWERS {QUERY}")).unwrap();
            let id = r.ok_info().unwrap().strip_prefix("cursor ").unwrap().to_string();
            let first = session.handle_line(&format!("FETCH {id} 1")).unwrap();
            session.handle_line(&format!("CLOSE {id}"));
            black_box(first)
        });
    });
    group.bench_function("first_row_materialized", |b| {
        b.iter(|| {
            let (rel, _) = eval::answers(&q, &db).unwrap();
            let first = rel.iter().next().map(<[Val]>::to_vec);
            black_box(first)
        });
    });
    group.bench_function("drain_streamed_chunks", |b| {
        b.iter(|| black_box(drain_streamed(&mut session).bytes));
    });
    group.bench_function("drain_materialized", |b| {
        b.iter(|| {
            let (rel, _) = eval::answers(&q, &db).unwrap();
            let mut out = Vec::with_capacity(rel.len() * 8);
            for row in rel.iter() {
                let line: Vec<String> = row.iter().map(u64::to_string).collect();
                writeln!(out, "* {}", line.join(" ")).unwrap();
            }
            black_box(out.len())
        });
    });
    group.finish();

    // the memory bound, re-checked on the bench shape: no single write
    // exceeds one chunk of short rows, however large the result
    let meter = drain_streamed(&mut session);
    assert!(
        meter.max_write <= STREAM_CHUNK_ROWS * 64,
        "largest write {} exceeds one chunk of rows",
        meter.max_write
    );

    // headline numbers: streaming ships the first row without paying
    // for the other N²−1
    let t0 = Instant::now();
    let r = session.handle_line(&format!("CURSOR ANSWERS {QUERY}")).unwrap();
    let id = r.ok_info().unwrap().strip_prefix("cursor ").unwrap().to_string();
    session.handle_line(&format!("FETCH {id} 1")).unwrap();
    let ttfr = t0.elapsed();
    session.handle_line(&format!("CLOSE {id}"));
    let t0 = Instant::now();
    let (rel, _) = eval::answers(&q, &db).unwrap();
    let full = t0.elapsed();
    println!(
        "streaming_answers: first row in {ttfr:?} streamed vs {full:?} to \
         materialize all {} rows; largest single write {} bytes \
         (chunk bound {} rows)",
        rel.len(),
        meter.max_write,
        STREAM_CHUNK_ROWS
    );
}

criterion_group!(benches, bench_streaming_answers);
criterion_main!(benches);
