//! Cold vs. warm repeated-query evaluation: what does the per-database
//! [`IndexCatalog`] buy?
//!
//! Each shape is evaluated two ways through the planner's catalog-aware
//! executor:
//!   * `cold` — a fresh catalog every iteration: every sorted view,
//!     hash index, statistics pass, and preprocessing artifact is
//!     rebuilt, which is what every facade call paid before the
//!     catalog existed;
//!   * `warm` — one shared catalog across iterations: the steady state
//!     of a server or batch workload repeating query shapes against an
//!     unchanged database, where evaluation is index-build-free and
//!     pays for the join/walk itself only.
//!
//! The planner is shared in both rungs (plans come from the shape
//! cache either way), so the difference isolates index/preprocessing
//! reuse. The headline acceptance numbers are `path3_answers` and
//! `triangle_decide`: warm must be ≥ 5× cold there.

use cq_bench::workloads::headline_shapes;
use cq_core::query::zoo;
use cq_core::ConjunctiveQuery;
use cq_data::generate as gen;
use cq_data::{Database, IndexCatalog};
use cq_planner::{build_lex_access_with_catalog, EvalCtx, Planner, Task};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn run(
    planner: &mut Planner,
    q: &ConjunctiveQuery,
    db: &Database,
    task: Task,
    cat: &IndexCatalog,
) -> u64 {
    let ctx = EvalCtx::new().with_catalog(cat);
    match task {
        Task::Decide => u64::from(ctx.decide(planner, q, db).unwrap().0),
        Task::Count => ctx.count(planner, q, db).unwrap().0,
        Task::Answers => ctx.answers(planner, q, db).unwrap().0.len() as u64,
        Task::Access => unreachable!("access shapes use build_lex_access"),
    }
}

/// The two acceptance-criterion shapes (shared with `parallel_scaling`
/// via `cq_bench::workloads`) plus supporting coverage across the
/// executor's operator kinds.
fn shapes() -> Vec<(&'static str, ConjunctiveQuery, Task, Database)> {
    let mut rng = gen::seeded_rng(43);
    let mut shapes = headline_shapes();
    shapes.extend([
        (
            "path3_decide",
            zoo::path_boolean(3),
            Task::Decide,
            gen::path_database(3, 10_000, &mut rng),
        ),
        (
            "path3_count",
            zoo::path_join(3),
            Task::Count,
            gen::path_database(3, 10_000, &mut rng),
        ),
        (
            "star2_count",
            zoo::star_selfjoin_free(2),
            Task::Count,
            gen::star_database(2, 3_000, 64, &mut rng),
        ),
    ]);
    shapes
}

/// Cold (fresh catalog per iteration) vs. warm (shared catalog).
fn bench_cold_vs_warm(c: &mut Criterion) {
    let mut g = c.benchmark_group("index_reuse");
    for (name, q, task, db) in shapes() {
        let mut planner = Planner::new();
        // settle the plan cache so both rungs dispatch identically
        run(&mut planner, &q, &db, task, &IndexCatalog::new());

        g.bench_function(format!("{name}/cold"), |b| {
            b.iter(|| {
                let cat = IndexCatalog::new();
                black_box(run(&mut planner, &q, &db, task, &cat))
            })
        });

        let warm = IndexCatalog::new();
        run(&mut planner, &q, &db, task, &warm);
        g.bench_function(format!("{name}/warm"), |b| {
            b.iter(|| black_box(run(&mut planner, &q, &db, task, &warm)))
        });
    }
    g.finish();
}

/// Ranked (direct) access: preprocessing once vs. per request.
fn bench_access_reuse(c: &mut Criterion) {
    let mut g = c.benchmark_group("index_reuse_access");
    let q = zoo::star_full(2);
    let z = q.var_by_name("z").unwrap();
    let x1 = q.var_by_name("x1").unwrap();
    let x2 = q.var_by_name("x2").unwrap();
    let order = vec![z, x1, x2];
    let db = gen::star_database(2, 20_000, 128, &mut gen::seeded_rng(7));
    let stats = cq_data::DataStats::collect(&db);
    let plan = Planner::plan_lex_access(&q, &order, &stats);

    g.bench_function("star2_lex_build_and_probe/cold", |b| {
        b.iter(|| {
            let cat = IndexCatalog::new();
            let da = build_lex_access_with_catalog(&plan, &q, &db, &cat).unwrap();
            black_box(da.access(da.len() / 2))
        })
    });
    let warm = IndexCatalog::new();
    build_lex_access_with_catalog(&plan, &q, &db, &warm).unwrap();
    g.bench_function("star2_lex_build_and_probe/warm", |b| {
        b.iter(|| {
            let da = build_lex_access_with_catalog(&plan, &q, &db, &warm).unwrap();
            black_box(da.access(da.len() / 2))
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(800));
    targets = bench_cold_vs_warm, bench_access_reuse
}
criterion_main!(benches);
