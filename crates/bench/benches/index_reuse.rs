//! Cold vs. warm repeated-query evaluation: what does the per-database
//! [`IndexCatalog`] buy?
//!
//! Each shape is evaluated two ways through the planner's catalog-aware
//! executor:
//!   * `cold` — a fresh catalog every iteration: every sorted view,
//!     hash index, statistics pass, and preprocessing artifact is
//!     rebuilt, which is what every facade call paid before the
//!     catalog existed;
//!   * `warm` — one shared catalog across iterations: the steady state
//!     of a server or batch workload repeating query shapes against an
//!     unchanged database, where evaluation is index-build-free and
//!     pays for the join/walk itself only.
//!
//! The planner is shared in both rungs (plans come from the shape
//! cache either way), so the difference isolates index/preprocessing
//! reuse. The headline acceptance numbers are `path3_answers` and
//! `triangle_decide`: warm must be ≥ 5× cold there.

use cq_core::query::zoo;
use cq_core::ConjunctiveQuery;
use cq_data::generate as gen;
use cq_data::{Database, IndexCatalog};
use cq_planner::{build_lex_access_with_catalog, eval, Planner, Task};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn run(
    planner: &mut Planner,
    q: &ConjunctiveQuery,
    db: &Database,
    task: Task,
    cat: &mut IndexCatalog,
) -> u64 {
    match task {
        Task::Decide => {
            u64::from(eval::decide_with_catalog(planner, q, db, cat).unwrap().0)
        }
        Task::Count => eval::count_with_catalog(planner, q, db, cat).unwrap().0,
        Task::Answers => {
            eval::answers_with_catalog(planner, q, db, cat).unwrap().0.len() as u64
        }
        Task::Access => unreachable!("access shapes use build_lex_access"),
    }
}

/// A path-3 database with a selective head: R1 keeps a slice of its
/// rows, so `|q(D)| ≪ m` and evaluation is preprocessing-dominated —
/// the output-sensitive regime the preprocessing/enumeration split is
/// about.
fn selective_path3(rows: usize, head: usize, rng: &mut rand::rngs::StdRng) -> Database {
    let mut db = gen::path_database(3, rows, rng);
    let r1 = db.expect("R1");
    let r1 = cq_data::Relation::from_row_slices(2, r1.iter().take(head));
    db.insert("R1", r1);
    db
}

fn shapes() -> Vec<(&'static str, ConjunctiveQuery, Task, Database)> {
    let mut rng = gen::seeded_rng(42);
    vec![
        // the two headline shapes of the acceptance criterion
        (
            "path3_answers",
            zoo::path_join(3),
            Task::Answers,
            selective_path3(30_000, 3_000, &mut rng),
        ),
        (
            "triangle_decide",
            zoo::triangle_boolean(),
            Task::Decide,
            gen::triangle_database(&gen::random_pairs(30_000, 1_000, &mut rng)),
        ),
        // supporting coverage across the executor's operator kinds
        (
            "path3_decide",
            zoo::path_boolean(3),
            Task::Decide,
            gen::path_database(3, 10_000, &mut rng),
        ),
        (
            "path3_count",
            zoo::path_join(3),
            Task::Count,
            gen::path_database(3, 10_000, &mut rng),
        ),
        (
            "star2_count",
            zoo::star_selfjoin_free(2),
            Task::Count,
            gen::star_database(2, 3_000, 64, &mut rng),
        ),
    ]
}

/// Cold (fresh catalog per iteration) vs. warm (shared catalog).
fn bench_cold_vs_warm(c: &mut Criterion) {
    let mut g = c.benchmark_group("index_reuse");
    for (name, q, task, db) in shapes() {
        let mut planner = Planner::new();
        // settle the plan cache so both rungs dispatch identically
        run(&mut planner, &q, &db, task, &mut IndexCatalog::new());

        g.bench_function(format!("{name}/cold"), |b| {
            b.iter(|| {
                let mut cat = IndexCatalog::new();
                black_box(run(&mut planner, &q, &db, task, &mut cat))
            })
        });

        let mut warm = IndexCatalog::new();
        run(&mut planner, &q, &db, task, &mut warm);
        g.bench_function(format!("{name}/warm"), |b| {
            b.iter(|| black_box(run(&mut planner, &q, &db, task, &mut warm)))
        });
    }
    g.finish();
}

/// Ranked (direct) access: preprocessing once vs. per request.
fn bench_access_reuse(c: &mut Criterion) {
    let mut g = c.benchmark_group("index_reuse_access");
    let q = zoo::star_full(2);
    let z = q.var_by_name("z").unwrap();
    let x1 = q.var_by_name("x1").unwrap();
    let x2 = q.var_by_name("x2").unwrap();
    let order = vec![z, x1, x2];
    let db = gen::star_database(2, 20_000, 128, &mut gen::seeded_rng(7));
    let stats = cq_data::DataStats::collect(&db);
    let plan = Planner::plan_lex_access(&q, &order, &stats);

    g.bench_function("star2_lex_build_and_probe/cold", |b| {
        b.iter(|| {
            let mut cat = IndexCatalog::new();
            let da = build_lex_access_with_catalog(&plan, &q, &db, &mut cat).unwrap();
            black_box(da.access(da.len() / 2))
        })
    });
    let mut warm = IndexCatalog::new();
    build_lex_access_with_catalog(&plan, &q, &db, &mut warm).unwrap();
    g.bench_function("star2_lex_build_and_probe/warm", |b| {
        b.iter(|| {
            let da = build_lex_access_with_catalog(&plan, &q, &db, &mut warm).unwrap();
            black_box(da.access(da.len() / 2))
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(800));
    targets = bench_cold_vs_warm, bench_access_reuse
}
criterion_main!(benches);
