//! The durability tax: what does routing ingest through `cq-storage`
//! cost, compared to the in-memory path the server ran before?
//!
//! Four groups:
//!   * `load` — bulk `LOAD`-shaped ingest of one relation, in-memory
//!     (build + normalize + insert) vs. WAL-backed (the same, plus
//!     encoding and appending one `Load` record) vs. WAL-backed with a
//!     per-record fsync (the durability level we deliberately do *not*
//!     run at — measured here so the choice stays an informed one);
//!   * `acked_commits` — per-mutation *acknowledged* durability: every
//!     row is individually acked only after its bytes are fsynced,
//!     either with one fsync per append (the naive floor) or through a
//!     shared [`GroupGate`] coalescing concurrent committers' flushes
//!     (`--group-commit-ms`'s mechanism; acceptance: ≥ 2× the naive
//!     floor at 10k rows);
//!   * `snapshot_save` — serializing + atomically writing a database
//!     snapshot, by relation size;
//!   * `snapshot_load` — reading + checksumming + rebuilding from that
//!     snapshot, by relation size (the boot-time recovery cost of a
//!     checkpointed tenant).
//!
//! Later PRs that optimize the write path further (record batching,
//! mmap reads) regress or improve against these numbers.

use cq_data::{generate as gen, Database, Relation};
use cq_storage::{snapshot, GroupGate, Store, WalRecord};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// A deterministic pseudo-random edge relation (dense enough that some
/// rows dedup, like real ingest).
fn edges(n: usize, seed: u64) -> Relation {
    gen::random_pairs(n, (n as u64).max(4), &mut gen::seeded_rng(seed))
}

fn edge_rows(n: usize) -> Vec<Vec<u64>> {
    edges(n, 0xD1CE).iter().map(<[u64]>::to_vec).collect()
}

fn bench_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join(format!("cq_ingest_bench_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The server's LOAD mutation, minus the wire: merge rows into the
/// database under set semantics.
fn apply_load(db: &mut Database, rows: &[Vec<u64>]) {
    let mut rel = db.get("Edge").cloned().unwrap_or_else(|| Relation::new(rows[0].len()));
    for row in rows {
        rel.push_row(row);
    }
    rel.normalize();
    db.insert("Edge", rel);
}

fn load_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("ingest_durability/load");
    for &n in &[1_000usize, 10_000] {
        let rows = edge_rows(n);
        group.bench_with_input(BenchmarkId::new("in_memory", n), &rows, |b, rows| {
            b.iter(|| {
                let mut db = Database::new();
                apply_load(&mut db, rows);
                black_box(db.size())
            })
        });
        let dir = bench_dir(&format!("wal_{n}"));
        let store = Store::open_dir(&dir).unwrap();
        let mut wal = store.create_tenant("t").unwrap();
        group.bench_with_input(BenchmarkId::new("wal_backed", n), &rows, |b, rows| {
            b.iter(|| {
                let mut db = Database::new();
                apply_load(&mut db, rows);
                let rec = WalRecord::Load {
                    relation: "Edge".to_string(),
                    arity: 2,
                    rows: rows.clone(),
                };
                wal.append(&rec).unwrap();
                black_box(db.size())
            })
        });
        group.bench_with_input(BenchmarkId::new("wal_fsync", n), &rows, |b, rows| {
            b.iter(|| {
                let mut db = Database::new();
                apply_load(&mut db, rows);
                let rec = WalRecord::Load {
                    relation: "Edge".to_string(),
                    arity: 2,
                    rows: rows.clone(),
                };
                wal.append(&rec).unwrap();
                wal.sync().unwrap();
                black_box(db.size())
            })
        });
        drop(wal);
        let _ = std::fs::remove_dir_all(&dir);
    }
    group.finish();
}

/// Acked per-mutation durability: `n` single-row inserts, each one
/// acknowledged only once a sync covering its append has landed.
/// `fsync_per_append` pays one flush per row; `group_commit` routes the
/// same rows through [`COMMITTERS`] concurrent threads sharing one
/// [`GroupGate`] (zero coalescing window — the gate still batches
/// everything that queued while the previous leader flushed, which is
/// exactly the server's steady state under load).
const COMMITTERS: usize = 8;

fn acked_commits(c: &mut Criterion) {
    let mut group = c.benchmark_group("ingest_durability/acked_commits");
    group.sample_size(10);
    for &n in &[1_000usize, 10_000] {
        group.bench_with_input(BenchmarkId::new("fsync_per_append", n), &n, |b, &n| {
            b.iter(|| {
                let dir = bench_dir("acked_naive");
                let store = Store::open_dir(&dir).unwrap();
                let mut wal = store.create_tenant("t").unwrap();
                for i in 0..n as u64 {
                    let rec =
                        WalRecord::Insert { relation: "Edge".into(), row: vec![i, i] };
                    wal.append(&rec).unwrap();
                    wal.sync().unwrap();
                }
                let syncs = wal.stats().syncs;
                drop(wal);
                let _ = std::fs::remove_dir_all(&dir);
                black_box(syncs)
            })
        });
        group.bench_with_input(BenchmarkId::new("group_commit", n), &n, |b, &n| {
            b.iter(|| {
                let dir = bench_dir("acked_group");
                let store = Store::open_dir(&dir).unwrap();
                let wal = Arc::new(Mutex::new(store.create_tenant("t").unwrap()));
                let gate = Arc::new(GroupGate::new());
                let per_thread = n / COMMITTERS;
                std::thread::scope(|s| {
                    for t in 0..COMMITTERS as u64 {
                        let wal = Arc::clone(&wal);
                        let gate = Arc::clone(&gate);
                        s.spawn(move || {
                            for i in 0..per_thread as u64 {
                                let rec = WalRecord::Insert {
                                    relation: "Edge".into(),
                                    row: vec![t, i],
                                };
                                let seq = {
                                    let mut w = wal.lock().unwrap();
                                    w.append(&rec).unwrap();
                                    w.stats().appends
                                };
                                gate.commit(seq, Duration::ZERO, || {
                                    let mut w = wal.lock().unwrap();
                                    (w.stats().appends, w.sync())
                                })
                                .unwrap();
                            }
                        });
                    }
                });
                let rounds = gate.rounds();
                let _ = std::fs::remove_dir_all(&dir);
                black_box(rounds)
            })
        });
    }
    group.finish();
}

fn snapshot_roundtrip(c: &mut Criterion) {
    let mut save = c.benchmark_group("ingest_durability/snapshot_save");
    let dir = bench_dir("snapshot");
    std::fs::create_dir_all(&dir).unwrap();
    for &n in &[1_000usize, 10_000, 100_000] {
        let mut db = Database::new();
        db.insert("Edge", edges(n, 0xBEEF));
        let path = dir.join(format!("bench_{n}.cqs"));
        save.bench_with_input(BenchmarkId::from_parameter(n), &db, |b, db| {
            b.iter(|| black_box(snapshot::write(db, 0, &path).unwrap()))
        });
    }
    save.finish();
    let mut load = c.benchmark_group("ingest_durability/snapshot_load");
    for &n in &[1_000usize, 10_000, 100_000] {
        let path = dir.join(format!("bench_{n}.cqs"));
        load.bench_with_input(BenchmarkId::from_parameter(n), &path, |b, path| {
            b.iter(|| black_box(snapshot::read(path).unwrap().unwrap().0.size()))
        });
    }
    load.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, load_throughput, acked_commits, snapshot_roundtrip);
criterion_main!(benches);
