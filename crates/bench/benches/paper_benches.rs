//! Criterion micro-benchmarks, one group per experiment of DESIGN.md §3.
//!
//! These complement the `experiments` binary: the binary runs the size
//! sweeps and exponent fits for EXPERIMENTS.md; these benches give
//! statistically robust single-size timings for regression tracking of
//! every algorithm the paper credits.

use cq_core::query::zoo;
use cq_core::Var;
use cq_data::generate as gen;
use cq_data::{Database, Relation, Val};
use cq_engine::direct_access::DirectAccess;
use cq_problems::Graph;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::Rng;

/// E1 — Yannakakis Boolean decision (Thm 3.1).
fn bench_e01_yannakakis(c: &mut Criterion) {
    let mut g = c.benchmark_group("e01_yannakakis");
    for m in [50_000usize, 100_000] {
        let db = gen::path_database(3, m / 3, &mut gen::seeded_rng(m as u64));
        let q = zoo::path_boolean(3);
        g.bench_with_input(BenchmarkId::new("path3_decide", m), &m, |b, _| {
            b.iter(|| cq_engine::yannakakis::decide_acyclic(&q, &db).unwrap())
        });
    }
    g.finish();
}

/// E2 — triangle detection (Thm 3.2).
fn bench_e02_triangle(c: &mut Criterion) {
    let mut g = c.benchmark_group("e02_triangle");
    let m = 40_000;
    let n = 2 * (m as f64).sqrt() as usize + 2;
    let graph = Graph::random_bipartite(n, m, &mut gen::seeded_rng(1));
    let delta = cq_matrix::omega::ayz_delta(m, 2.5);
    g.bench_function("edge_iterator", |b| {
        b.iter(|| cq_problems::triangle::find_triangle_edge_iterator(&graph))
    });
    g.bench_function("ayz_split", |b| {
        b.iter(|| cq_problems::triangle::find_triangle_ayz(&graph, delta))
    });
    g.bench_function("dense_bmm", |b| {
        b.iter(|| cq_problems::triangle::find_triangle_bmm(&graph))
    });
    // the relational variant of Thm 3.2
    let edges = cq_reductions::triangle_to_testing::edge_relation(&graph);
    let db = gen::triangle_database(&edges);
    g.bench_function("query_ayz", |b| {
        b.iter(|| cq_engine::triangle_query::decide_triangle_ayz(&db, delta).unwrap())
    });
    g.bench_function("query_generic_join", |b| {
        b.iter(|| cq_engine::triangle_query::decide_triangle_generic(&db).unwrap())
    });
    g.finish();
}

/// E3 — Prop 3.3 reduction + evaluation.
fn bench_e03_cyclic(c: &mut Criterion) {
    let mut g = c.benchmark_group("e03_cyclic_embedding");
    let m = 10_000;
    let n = 2 * (m as f64).sqrt() as usize + 2;
    let graph = Graph::random_bipartite(n, m, &mut gen::seeded_rng(2));
    let q = zoo::cycle_boolean(4);
    g.bench_function("build_c4_db", |b| {
        b.iter(|| cq_reductions::triangle_to_query::build(&q, &graph).unwrap())
    });
    let db = cq_reductions::triangle_to_query::build(&q, &graph).unwrap();
    g.bench_function("evaluate_c4", |b| {
        b.iter(|| cq_engine::generic_join::decide(&q, &db).unwrap())
    });
    g.finish();
}

/// E4 — Loomis–Whitney joins (Ex 3.4 / Thm 3.5).
fn bench_e04_lw(c: &mut Criterion) {
    let mut g = c.benchmark_group("e04_loomis_whitney");
    for (k, d) in [(3usize, 60u64), (4, 16), (5, 8)] {
        let rel = gen::full_relation(k - 1, d);
        let db = gen::lw_database(k, &rel);
        let q = zoo::loomis_whitney_boolean(k).join_version();
        let atoms = cq_engine::bind::bind(&q, &db).unwrap();
        let order: Vec<Var> = q.vars().collect();
        g.bench_with_input(BenchmarkId::new("enumerate_all", k), &k, |b, _| {
            b.iter(|| {
                let mut count = 0u64;
                cq_engine::generic_join::generic_join_visit(&atoms, &order, &mut |_| {
                    count += 1;
                    true
                });
                count
            })
        });
    }
    g.finish();
}

/// E5 — star counting baseline (Lemma 3.9).
fn bench_e05_star_count(c: &mut Criterion) {
    let mut g = c.benchmark_group("e05_star_counting");
    let q = zoo::star_selfjoin(2);
    let db = gen::star_database(2, 1_000, 1, &mut gen::seeded_rng(3));
    g.bench_function("count_qstar2_m1000", |b| {
        b.iter(|| cq_engine::generic_join::count_distinct(&q, &db).unwrap())
    });
    g.finish();
}

/// E6 — counting dichotomy (Thm 3.8 / 3.13).
fn bench_e06_count(c: &mut Criterion) {
    let mut g = c.benchmark_group("e06_counting");
    let db = gen::path_database(3, 50_000, &mut gen::seeded_rng(4));
    let join = zoo::path_join(3);
    g.bench_function("acyclic_join_dp", |b| {
        b.iter(|| cq_engine::count::count_acyclic_join(&join, &db).unwrap())
    });
    let fc =
        cq_core::parse_query("q(x0, x1) :- R1(x0,x1), R2(x1,x2), R3(x2,x3)").unwrap();
    g.bench_function("free_connex", |b| {
        b.iter(|| cq_engine::count::count_free_connex(&fc, &db).unwrap())
    });
    let qmm = zoo::matmul_projection();
    let mut rng = gen::seeded_rng(5);
    let mut db2 = Database::new();
    db2.insert(
        "R1",
        Relation::from_pairs((0..2_000).map(|i| (i as Val, rng.gen_range(0..4u64)))),
    );
    db2.insert(
        "R2",
        Relation::from_pairs((0..2_000).map(|i| (rng.gen_range(0..4u64), i as Val))),
    );
    g.bench_function("materialization_qmm", |b| {
        b.iter(|| cq_engine::generic_join::count_distinct(&qmm, &db2).unwrap())
    });
    g.finish();
}

/// E7 — enumeration (Thm 3.17).
fn bench_e07_enumeration(c: &mut Criterion) {
    let mut g = c.benchmark_group("e07_enumeration");
    let q = zoo::star_full(2);
    let db = gen::star_database(2, 100_000, 64, &mut gen::seeded_rng(6));
    g.bench_function("preprocess_qhat2", |b| {
        b.iter(|| cq_engine::Enumerator::preprocess(&q, &db).unwrap())
    });
    g.bench_function("enumerate_100k_answers", |b| {
        b.iter(|| {
            let mut e = cq_engine::Enumerator::preprocess(&q, &db).unwrap();
            let mut count = 0u64;
            e.for_each(|_| {
                count += 1;
                count < 100_000
            });
            count
        })
    });
    g.finish();
}

/// E8/E9 — direct access (Thm 3.18 / 3.24).
fn bench_e08_e09_direct_access(c: &mut Criterion) {
    let mut g = c.benchmark_group("e08_e09_direct_access");
    let q = zoo::star_full(2);
    let db = gen::star_database(2, 50_000, 128, &mut gen::seeded_rng(7));
    let z = q.var_by_name("z").unwrap();
    let x1 = q.var_by_name("x1").unwrap();
    let x2 = q.var_by_name("x2").unwrap();
    let good = vec![z, x1, x2];
    g.bench_function("build_trio_free", |b| {
        b.iter(|| cq_engine::LexDirectAccess::build(&q, &db, &good).unwrap())
    });
    let da = cq_engine::LexDirectAccess::build(&q, &db, &good).unwrap();
    let n = da.len();
    g.bench_function("access_random", |b| {
        let mut rng = gen::seeded_rng(8);
        b.iter(|| da.access(rng.gen_range(0..n)))
    });
    let small = gen::star_database(2, 2_000, 16, &mut gen::seeded_rng(9));
    let bad = vec![x1, x2, z];
    g.bench_function("build_disrupted_materialize", |b| {
        b.iter(|| cq_engine::MaterializedDirectAccess::build(&q, &small, &bad).unwrap())
    });
    g.finish();
}

/// E10 — sum orders (Thm 3.26).
fn bench_e10_sum_order(c: &mut Criterion) {
    let mut g = c.benchmark_group("e10_sum_order");
    let q = cq_core::parse_query("q(a, b, c) :- R(a, b, c)").unwrap();
    let mut rng = gen::seeded_rng(10);
    let rel = gen::random_relation(3, 100_000, 400_000, &mut rng);
    let mut db = Database::new();
    db.insert("R", rel);
    let ws: Vec<i64> = (0..400_000).map(|_| rng.gen_range(0..1000)).collect();
    let wf = |v: Val| ws[v as usize];
    g.bench_function("covering_atom_build", |b| {
        b.iter(|| cq_engine::SumOrderAccess::build_covering_atom(&q, &db, &wf).unwrap())
    });
    let inst =
        cq_problems::three_sum::ThreeSumInstance::random(400, 1_000_000, false, &mut rng);
    g.bench_function("three_sum_two_pointer", |b| {
        b.iter(|| cq_problems::three_sum::three_sum_sorted(&inst))
    });
    g.finish();
}

/// E11 — k-clique via triangles (Thm 4.1).
fn bench_e11_kclique(c: &mut Criterion) {
    let mut g = c.benchmark_group("e11_kclique");
    // complete tripartite: K4-free worst case
    let per = 12;
    let mut edges = Vec::new();
    for pa in 0..3usize {
        for pb in (pa + 1)..3 {
            for i in 0..per {
                for j in 0..per {
                    edges.push(((pa * per + i) as u32, (pb * per + j) as u32));
                }
            }
        }
    }
    let graph = Graph::from_edges(3 * per, edges);
    g.bench_function("backtracking_k4", |b| {
        b.iter(|| cq_problems::clique::find_k_clique_backtracking(&graph, 4))
    });
    g.bench_function("nesetril_poljak_k4", |b| {
        b.iter(|| cq_problems::clique::find_k_clique_np(&graph, 4))
    });
    g.finish();
}

/// E12 — clique embedding (Ex 4.3 / Fig 1).
fn bench_e12_embedding(c: &mut Criterion) {
    let mut g = c.benchmark_group("e12_clique_embedding");
    let wg = cq_problems::weighted_clique::WeightedGraph::random_complete(
        8,
        100,
        &mut gen::seeded_rng(11),
    );
    g.bench_function("min_weight_5clique_via_c5", |b| {
        b.iter(|| cq_reductions::clique_embedding_db::min_weight_clique_via_cycle(5, &wg))
    });
    g.bench_function("min_weight_5clique_brute", |b| {
        b.iter(|| cq_problems::weighted_clique::min_weight_k_clique(&wg, 5))
    });
    g.finish();
}

/// E13 — star size computation (Thm 4.6).
fn bench_e13_star_size(c: &mut Criterion) {
    let mut g = c.benchmark_group("e13_star_size");
    let q = cq_core::parse_query(
        "q(x1,x2,x3) :- R1(x1,y1), R2(y1,y2), R3(x2,y2), R4(y2,y3), R5(x3,y3)",
    )
    .unwrap();
    g.bench_function("quantified_star_size", |b| {
        b.iter(|| cq_core::star_size::quantified_star_size(&q))
    });
    g.bench_function("classify_full_profile", |b| {
        b.iter(|| cq_core::classify::classify(&q))
    });
    g.finish();
}

/// E14 — sparse BMM (Hypothesis 1).
fn bench_e14_sparse_bmm(c: &mut Criterion) {
    let mut g = c.benchmark_group("e14_sparse_bmm");
    use cq_matrix::sparse::{default_delta, spgemm, spgemm_heavy_light};
    use cq_matrix::SparseBoolMat;
    let m = 20_000;
    let n = 2 * (m as f64).sqrt() as usize;
    let hubs = 27;
    let mut rng = gen::seeded_rng(12);
    let ea: Vec<(u32, u32)> = (0..m)
        .map(|i| {
            if i % 2 == 0 {
                (rng.gen_range(0..n as u32), rng.gen_range(0..hubs))
            } else {
                (rng.gen_range(0..n as u32), rng.gen_range(0..n as u32))
            }
        })
        .collect();
    let eb: Vec<(u32, u32)> = ea.iter().map(|&(x, y)| (y, x)).collect();
    let a = SparseBoolMat::from_entries(n, n, ea);
    let b_mat = SparseBoolMat::from_entries(n, n, eb);
    g.bench_function("spgemm_hash", |bch| bch.iter(|| spgemm(&a, &b_mat)));
    g.bench_function("heavy_light", |bch| {
        bch.iter(|| spgemm_heavy_light(&a, &b_mat, default_delta(m)))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    // bounded runtime: 10 samples, short measurement windows — the
    // exponent sweeps live in the `experiments` binary, these benches
    // are for regression tracking.
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1500));
    targets =
    bench_e01_yannakakis,
    bench_e02_triangle,
    bench_e03_cyclic,
    bench_e04_lw,
    bench_e05_star_count,
    bench_e06_count,
    bench_e07_enumeration,
    bench_e08_e09_direct_access,
    bench_e10_sum_order,
    bench_e11_kclique,
    bench_e12_embedding,
    bench_e13_star_size,
    bench_e14_sparse_bmm
}
criterion_main!(benches);
