//! What does observability cost on the hot path?
//!
//! The per-command instrumentation a `Session` pays is fixed and small:
//! two `Instant::now()`/`elapsed()` pairs (command + operator timing),
//! one cached-handle counter increment + histogram record for the
//! command, one for the plan operator, the slow-query threshold gate
//! (a single relaxed load), and the error-kind scan of the reply
//! terminal. The recording calls cannot be compiled out, so the bench
//! decomposes instead of diffing two builds:
//!
//!   * `warm_count` — the full instrumented hot path: a warm repeated
//!     `COUNT` join through `Session::handle_line` (plan cache and
//!     catalog both hot);
//!   * `obs_ops_per_command` — exactly the per-command observability
//!     work listed above, alone — plus the tracing-disabled span work
//!     the engine now performs unconditionally (a thread-local read of
//!     the current sink and a handful of no-op span opens/attrs, one
//!     per instrumented operator and stream).
//!
//! The acceptance bound (ISSUE 6): instrumentation stays within ~2% of
//! the uninstrumented path, i.e. `obs_ops ≤ 2% · warm_count`. The
//! assertion runs on `cargo bench` (CI compiles with `--no-run`; the
//! bound is checked wherever the bench is actually executed).

use cq_server::metrics::SessionMetrics;
use cq_server::server::Session;
use cq_server::state::ServerState;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::sync::Arc;
use std::time::Instant;

const QUERY: &str = "COUNT q(x, z) :- R(x, y), S(y, z)";

/// A session over one tenant with a join big enough that the warm
/// query costs tens of microseconds (so the 2% bound is meaningful).
fn warm_session() -> (Session, Arc<ServerState>) {
    let state = Arc::new(ServerState::new());
    let mut s = Session::new(Arc::clone(&state));
    s.handle_line("CREATE DB bench");
    s.handle_line("USE bench");
    for (rel, flip) in [("R", false), ("S", true)] {
        s.handle_line(&format!("LOAD {rel} 2"));
        for i in 0..5_000u64 {
            let (a, b) = (i, i % 500);
            if flip {
                s.handle_line(&format!("{b} {a}"));
            } else {
                s.handle_line(&format!("{a} {b}"));
            }
        }
        s.handle_line("END");
    }
    // warm the plan cache and the tenant's index catalog
    let r = s.handle_line(QUERY).expect("warm query replies");
    assert!(r.is_ok(), "{}", r.terminal);
    (s, state)
}

/// Median per-iteration nanoseconds of `f` over `samples` batches.
fn median_ns<O, F: FnMut() -> O>(mut f: F, iters: u32, samples: usize) -> f64 {
    let mut out = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t0 = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        out.push(t0.elapsed().as_secs_f64() * 1e9 / f64::from(iters));
    }
    out.sort_by(|a, b| a.total_cmp(b));
    out[samples / 2]
}

/// The span work one command pays with tracing OFF: what the session
/// layer does per dispatch (a TLS sink read) and what the engine does
/// per operator and stream (no-op span opens, attrs, and drops against
/// a disabled sink). Five spans approximates a typical plan: the
/// executor's `execute`, one operator, one preprocess, one stream, one
/// storage span.
fn disabled_trace_ops() {
    let sink = cq_obs::trace::current();
    black_box(sink.is_enabled());
    for _ in 0..5 {
        let mut span = cq_obs::trace::span("bench.noop");
        span.attr("rows", 1);
        span.attr("cancel-polls", 1);
        black_box(&span);
    }
}

fn bench_metrics_overhead(c: &mut Criterion) {
    let (mut session, state) = warm_session();
    let mut sm = SessionMetrics::new(Arc::clone(state.metrics()));
    let slowlog = state.metrics();

    let mut group = c.benchmark_group("metrics_overhead");
    group.bench_function("warm_count", |b| {
        b.iter(|| session.handle_line(black_box(QUERY)));
    });
    group.bench_function("obs_ops_per_command", |b| {
        b.iter(|| {
            let t0 = Instant::now();
            let e0 = t0.elapsed();
            let t1 = Instant::now();
            let e1 = t1.elapsed();
            sm.record_op("bench", "generic join (worst-case optimal)", e0);
            sm.record_cmd("db.bench", "count", e1);
            disabled_trace_ops();
            slowlog.slowlog().should_record(e1)
        });
    });
    group.finish();

    // the acceptance bound, self-timed (medians; the criterion shim
    // does not expose its measurements)
    let query_ns = median_ns(|| session.handle_line(QUERY), 200, 9);
    let obs_ns = median_ns(
        || {
            let t0 = Instant::now();
            let e0 = t0.elapsed();
            let t1 = Instant::now();
            let e1 = t1.elapsed();
            sm.record_op("bench", "generic join (worst-case optimal)", e0);
            sm.record_cmd("db.bench", "count", e1);
            disabled_trace_ops();
            slowlog.slowlog().should_record(e1)
        },
        10_000,
        9,
    );
    let pct = 100.0 * obs_ns / query_ns;
    println!(
        "metrics_overhead: obs {obs_ns:.0} ns vs warm query {query_ns:.0} ns \
         ({pct:.2}% of the hot path; bound 2%)"
    );
    assert!(
        obs_ns <= query_ns * 0.02,
        "per-command observability work ({obs_ns:.0} ns) exceeds 2% of the warm \
         hot path ({query_ns:.0} ns)"
    );
}

criterion_group!(benches, bench_metrics_overhead);
criterion_main!(benches);
