//! Parallel warm evaluation over one shared database: batch throughput
//! as a function of worker threads.
//!
//! The concurrency work in `cq-data`/`cq-planner` exists for exactly
//! this measurement: `eval::batch` shares one internally-locked
//! [`IndexCatalog`] and one planner pass across the whole batch, and no
//! lock is held across an execution — so on a warm catalog, N workers
//! evaluating N independent queries should approach N× the
//! single-thread throughput (acceptance: 8 threads ≥ 3× one thread on
//! the index_reuse workload). Lock hold times are hash-map probes plus
//! `Arc` clones, a few per evaluation, so the mutex never becomes the
//! bottleneck.
//!
//! The rungs fix the batch and sweep the worker count, so the measured
//! per-batch time is directly comparable across rungs. Worker counts
//! beyond the machine's cores cannot speed anything up — the printed
//! `available_parallelism` line says how many rungs are meaningful on
//! this host (a single-core CI box measures lock overhead, not
//! scaling).

use cq_bench::workloads::headline_shapes;
use cq_core::ConjunctiveQuery;
use cq_planner::{eval, Task};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_parallel_batch(c: &mut Criterion) {
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!("parallel_scaling: available_parallelism = {cores}");
    let mut g = c.benchmark_group("parallel_scaling");
    const BATCH: usize = 64;
    for (name, q, task, db) in headline_shapes() {
        let items: Vec<(&ConjunctiveQuery, Task)> = vec![(&q, task); BATCH];
        // settle the plan cache and warm the registry catalog once
        eval::batch_tasks_with_workers(items.iter().copied(), &db, 1);
        for workers in [1usize, 2, 4, 8] {
            g.bench_function(format!("{name}/warm_batch{BATCH}/{workers}threads"), |b| {
                b.iter(|| {
                    black_box(eval::batch_tasks_with_workers(
                        items.iter().copied(),
                        &db,
                        workers,
                    ))
                })
            });
        }
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(800));
    targets = bench_parallel_batch
}
criterion_main!(benches);
