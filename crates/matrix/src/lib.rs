//! # cq-matrix — Boolean matrix multiplication substrate
//!
//! The paper leans on matrix multiplication in three places: the
//! Alon–Yuster–Zwick triangle algorithm (Thm 3.2), the Nešetřil–Poljak
//! k-clique algorithm (Thm 4.1), and the sparse-BMM hypothesis behind the
//! enumeration lower bounds (Hypothesis 1, Thm 3.15). This crate builds
//! the whole substrate from scratch:
//!
//! * [`BitMatrix`] — dense Boolean matrices, one bit per entry;
//! * [`dense`] — naive cubic, word-parallel row-OR (n³/64), and blocked
//!   multiplies;
//! * [`four_russians`] — the O(n³ / (w log n)) table method;
//! * [`strassen`] — Strassen over integers with a Boolean wrapper (the
//!   genuinely sub-cubic route; paper §2.3);
//! * [`sparse`] — sparse Boolean matrices with a hash SpGEMM and the
//!   **heavy/light output-sensitive algorithm** whose m^{4/3} shape is
//!   exactly what Hypothesis 1 conjectures optimal;
//! * [`omega`] — measures this machine's *effective* ω by log–log fit,
//!   which parameterizes the AYZ degree threshold honestly.

pub mod bitmat;
pub mod dense;
pub mod four_russians;
pub mod omega;
pub mod sparse;
pub mod strassen;

pub use bitmat::BitMatrix;
pub use sparse::SparseBoolMat;
