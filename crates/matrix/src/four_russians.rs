//! The Method of Four Russians for Boolean matrix multiplication.
//!
//! Split the middle dimension into groups of `t ≈ log₂ n` indices. For
//! each group, precompute the OR of every subset of the corresponding `t`
//! rows of `B` (2^t table entries, built incrementally in one OR each).
//! A row of `A` then consumes each group with a single table lookup.
//! Total: O(n³ / (w·log n)) with w-bit words — asymptotically better than
//! the plain word-parallel multiply, and the classical example of a
//! *combinatorial* sub-n³ algorithm (paper §4.1.1 contrasts such
//! algorithms with Strassen-style algebraic ones).

use crate::bitmat::BitMatrix;

/// Four-Russians Boolean multiply. `t = 0` picks `t` automatically
/// (`⌈log₂ max(rows,2)⌉`, capped at 16 to bound table memory).
pub fn multiply_four_russians(a: &BitMatrix, b: &BitMatrix, t: usize) -> BitMatrix {
    assert_eq!(a.cols(), b.rows(), "dimension mismatch");
    let n_mid = a.cols();
    let t = if t == 0 {
        ((n_mid.max(2) as f64).log2().ceil() as usize).clamp(1, 16)
    } else {
        t.min(16)
    };
    let mut c = BitMatrix::zero(a.rows(), b.cols());
    if n_mid == 0 {
        return c;
    }
    let words = b.cols().div_ceil(64);
    // table[s] = OR of rows {k0 + i : bit i set in s} of B
    let mut table: Vec<u64> = vec![0u64; (1usize << t) * words];

    let mut k0 = 0usize;
    while k0 < n_mid {
        let g = t.min(n_mid - k0);
        let size = 1usize << g;
        // build incrementally: table[s] = table[s without lowest bit] | row
        for s in 1..size {
            let low = s.trailing_zeros() as usize;
            let prev = s & (s - 1);
            let row = b.row_words(k0 + low);
            let (dst_lo, src) = if prev == 0 {
                (s * words, None)
            } else {
                (s * words, Some(prev * words))
            };
            for w in 0..words {
                let base = match src {
                    Some(p) => table[p + w],
                    None => 0,
                };
                table[dst_lo + w] = base | row[w];
            }
        }
        // consume: extract the g bits [k0, k0+g) from each row of A
        for i in 0..a.rows() {
            let mut s = 0usize;
            for d in 0..g {
                if a.get(i, k0 + d) {
                    s |= 1 << d;
                }
            }
            if s != 0 {
                let src = s * words;
                let dst = c.row_words_mut(i);
                for w in 0..words {
                    dst[w] |= table[src + w];
                }
            }
        }
        k0 += g;
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::multiply_rowwise;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn random(r: usize, c: usize, seed: u64, d: f64) -> BitMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        BitMatrix::random(r, c, d, &mut rng)
    }

    #[test]
    fn matches_rowwise_square() {
        for n in [1usize, 5, 64, 65, 129] {
            let a = random(n, n, n as u64, 0.15);
            let b = random(n, n, n as u64 + 7, 0.15);
            assert_eq!(
                multiply_four_russians(&a, &b, 0),
                multiply_rowwise(&a, &b),
                "n={n}"
            );
        }
    }

    #[test]
    fn matches_rowwise_rectangular() {
        let a = random(20, 33, 3, 0.2);
        let b = random(33, 70, 4, 0.2);
        assert_eq!(multiply_four_russians(&a, &b, 0), multiply_rowwise(&a, &b));
    }

    #[test]
    fn explicit_group_sizes() {
        let a = random(40, 40, 11, 0.1);
        let b = random(40, 40, 12, 0.1);
        let want = multiply_rowwise(&a, &b);
        for t in [1usize, 2, 3, 8, 16] {
            assert_eq!(multiply_four_russians(&a, &b, t), want, "t={t}");
        }
    }

    #[test]
    fn dense_inputs() {
        let a = random(64, 64, 21, 0.9);
        let b = random(64, 64, 22, 0.9);
        assert_eq!(multiply_four_russians(&a, &b, 0), multiply_rowwise(&a, &b));
    }

    #[test]
    fn zero_matrix() {
        let a = BitMatrix::zero(10, 10);
        let b = random(10, 10, 30, 0.5);
        assert!(!multiply_four_russians(&a, &b, 0).any());
    }
}
