//! Strassen's sub-cubic matrix multiplication (paper §2.3).
//!
//! Strassen needs subtraction, which the Boolean semiring lacks, so —
//! exactly as the paper describes — Boolean products are computed by
//! lifting to the integers and thresholding the result: "interpret their
//! entries as real numbers and multiply them over the reals. Then …
//! substituting any non-zero entry of the output C by 1 gives the result
//! of Boolean matrix multiplication."
//!
//! We implement Strassen over `i64` with a naive-multiply cutoff. The
//! asymptotic exponent is log₂7 ≈ 2.807 — genuinely below 3 — making
//! this the honest stand-in for "fast matrix multiplication" on real
//! hardware (the ω < 2.372 algorithms are galactic; see DESIGN.md).

use crate::bitmat::BitMatrix;

/// A dense row-major `i64` matrix (square or rectangular).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct IntMatrix {
    rows: usize,
    cols: usize,
    data: Vec<i64>,
}

impl IntMatrix {
    /// All-zero matrix.
    pub fn zero(rows: usize, cols: usize) -> Self {
        IntMatrix { rows, cols, data: vec![0; rows * cols] }
    }

    /// From a Boolean matrix (entries 0/1).
    pub fn from_bool(b: &BitMatrix) -> Self {
        let mut m = Self::zero(b.rows(), b.cols());
        for i in 0..b.rows() {
            for j in b.row_ones(i) {
                m.data[i * m.cols + j] = 1;
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Entry (i, j).
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> i64 {
        self.data[i * self.cols + j]
    }

    /// Set entry (i, j).
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: i64) {
        self.data[i * self.cols + j] = v;
    }

    /// Threshold to Boolean: non-zero ↦ 1.
    pub fn to_bool(&self) -> BitMatrix {
        let mut b = BitMatrix::zero(self.rows, self.cols);
        for i in 0..self.rows {
            for j in 0..self.cols {
                if self.get(i, j) != 0 {
                    b.set(i, j, true);
                }
            }
        }
        b
    }

    /// Naive O(n³) product (ikj loop order for locality).
    pub fn multiply_naive(&self, other: &IntMatrix) -> IntMatrix {
        assert_eq!(self.cols, other.rows, "dimension mismatch");
        let mut c = IntMatrix::zero(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a == 0 {
                    continue;
                }
                let brow = &other.data[k * other.cols..(k + 1) * other.cols];
                let crow = &mut c.data[i * other.cols..(i + 1) * other.cols];
                for (cv, &bv) in crow.iter_mut().zip(brow) {
                    *cv += a * bv;
                }
            }
        }
        c
    }
}

/// Strassen multiply with naive cutoff at `cutoff` (0 = default 64).
/// Inputs are padded to the next power of two internally.
pub fn strassen_multiply(a: &IntMatrix, b: &IntMatrix, cutoff: usize) -> IntMatrix {
    assert_eq!(a.cols(), b.rows(), "dimension mismatch");
    let cutoff = if cutoff == 0 { 64 } else { cutoff };
    let n = a.rows().max(a.cols()).max(b.cols()).next_power_of_two();
    let pa = pad(a, n);
    let pb = pad(b, n);
    let pc = strassen_rec(&pa, &pb, n, cutoff);
    crop(&pc, a.rows(), b.cols())
}

fn pad(m: &IntMatrix, n: usize) -> IntMatrix {
    let mut p = IntMatrix::zero(n, n);
    for i in 0..m.rows() {
        p.data[i * n..i * n + m.cols()]
            .copy_from_slice(&m.data[i * m.cols()..(i + 1) * m.cols()]);
    }
    p
}

fn crop(m: &IntMatrix, rows: usize, cols: usize) -> IntMatrix {
    let mut c = IntMatrix::zero(rows, cols);
    for i in 0..rows {
        c.data[i * cols..(i + 1) * cols]
            .copy_from_slice(&m.data[i * m.cols()..i * m.cols() + cols]);
    }
    c
}

fn add(a: &IntMatrix, b: &IntMatrix) -> IntMatrix {
    let mut c = a.clone();
    for (x, &y) in c.data.iter_mut().zip(&b.data) {
        *x += y;
    }
    c
}

fn sub(a: &IntMatrix, b: &IntMatrix) -> IntMatrix {
    let mut c = a.clone();
    for (x, &y) in c.data.iter_mut().zip(&b.data) {
        *x -= y;
    }
    c
}

fn quadrant(m: &IntMatrix, qi: usize, qj: usize, h: usize) -> IntMatrix {
    let mut q = IntMatrix::zero(h, h);
    for i in 0..h {
        let src = (qi * h + i) * m.cols() + qj * h;
        q.data[i * h..(i + 1) * h].copy_from_slice(&m.data[src..src + h]);
    }
    q
}

fn strassen_rec(a: &IntMatrix, b: &IntMatrix, n: usize, cutoff: usize) -> IntMatrix {
    if n <= cutoff {
        return a.multiply_naive(b);
    }
    let h = n / 2;
    let a11 = quadrant(a, 0, 0, h);
    let a12 = quadrant(a, 0, 1, h);
    let a21 = quadrant(a, 1, 0, h);
    let a22 = quadrant(a, 1, 1, h);
    let b11 = quadrant(b, 0, 0, h);
    let b12 = quadrant(b, 0, 1, h);
    let b21 = quadrant(b, 1, 0, h);
    let b22 = quadrant(b, 1, 1, h);

    let m1 = strassen_rec(&add(&a11, &a22), &add(&b11, &b22), h, cutoff);
    let m2 = strassen_rec(&add(&a21, &a22), &b11, h, cutoff);
    let m3 = strassen_rec(&a11, &sub(&b12, &b22), h, cutoff);
    let m4 = strassen_rec(&a22, &sub(&b21, &b11), h, cutoff);
    let m5 = strassen_rec(&add(&a11, &a12), &b22, h, cutoff);
    let m6 = strassen_rec(&sub(&a21, &a11), &add(&b11, &b12), h, cutoff);
    let m7 = strassen_rec(&sub(&a12, &a22), &add(&b21, &b22), h, cutoff);

    let c11 = add(&sub(&add(&m1, &m4), &m5), &m7);
    let c12 = add(&m3, &m5);
    let c21 = add(&m2, &m4);
    let c22 = add(&add(&sub(&m1, &m2), &m3), &m6);

    let mut c = IntMatrix::zero(n, n);
    for i in 0..h {
        c.data[i * n..i * n + h].copy_from_slice(&c11.data[i * h..(i + 1) * h]);
        c.data[i * n + h..(i + 1) * n].copy_from_slice(&c12.data[i * h..(i + 1) * h]);
        let r = (i + h) * n;
        c.data[r..r + h].copy_from_slice(&c21.data[i * h..(i + 1) * h]);
        c.data[r + h..r + n].copy_from_slice(&c22.data[i * h..(i + 1) * h]);
    }
    c
}

/// Boolean multiply through Strassen-over-integers + thresholding (the
/// paper's §2.3 recipe). Sound for inner dimension < 2^40 or so; query
/// workloads are far below any overflow risk since entries count at most
/// `n` witnesses.
pub fn bool_multiply_strassen(a: &BitMatrix, b: &BitMatrix, cutoff: usize) -> BitMatrix {
    let ia = IntMatrix::from_bool(a);
    let ib = IntMatrix::from_bool(b);
    strassen_multiply(&ia, &ib, cutoff).to_bool()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::multiply_rowwise;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_int(r: usize, c: usize, seed: u64) -> IntMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut m = IntMatrix::zero(r, c);
        for i in 0..r {
            for j in 0..c {
                m.set(i, j, rng.gen_range(-5..=5));
            }
        }
        m
    }

    #[test]
    fn strassen_matches_naive_square() {
        for n in [1usize, 2, 3, 17, 64, 100] {
            let a = random_int(n, n, n as u64);
            let b = random_int(n, n, n as u64 + 99);
            let want = a.multiply_naive(&b);
            assert_eq!(strassen_multiply(&a, &b, 8), want, "n={n}");
        }
    }

    #[test]
    fn strassen_matches_naive_rectangular() {
        let a = random_int(13, 27, 1);
        let b = random_int(27, 9, 2);
        assert_eq!(strassen_multiply(&a, &b, 4), a.multiply_naive(&b));
    }

    #[test]
    fn bool_via_strassen_matches_rowwise() {
        let mut rng = StdRng::seed_from_u64(5);
        for n in [10usize, 65, 128] {
            let a = BitMatrix::random(n, n, 0.15, &mut rng);
            let b = BitMatrix::random(n, n, 0.15, &mut rng);
            assert_eq!(
                bool_multiply_strassen(&a, &b, 16),
                multiply_rowwise(&a, &b),
                "n={n}"
            );
        }
    }

    #[test]
    fn counts_witnesses_exactly() {
        // integer product counts the number of 2-paths — needed by the
        // triangle *counting* uses downstream.
        let a = IntMatrix::from_bool(&BitMatrix::from_entries(
            3,
            3,
            &[(0, 1), (0, 2), (1, 0), (2, 0)],
        ));
        let sq = strassen_multiply(&a, &a, 2);
        // paths 0→{1,2}→0: entry (0,0) = 2
        assert_eq!(sq.get(0, 0), 2);
    }

    #[test]
    fn cutoff_default() {
        let a = random_int(70, 70, 9);
        let b = random_int(70, 70, 10);
        assert_eq!(strassen_multiply(&a, &b, 0), a.multiply_naive(&b));
    }
}
