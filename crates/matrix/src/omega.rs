//! Effective matrix-multiplication exponent calibration.
//!
//! Every ω-parameterized formula in the paper (the AYZ threshold
//! Δ = m^{(ω−1)/(ω+1)} of Thm 3.2, the n^{ω·k/3} of Thm 4.1) is only
//! meaningful for the multiply actually in use. Our word-parallel
//! multiply is Θ(n³/64) asymptotically, but at benchmark scales its
//! *fitted* exponent is what matters; this module measures it by log–log
//! regression, and the experiment harness instantiates the paper formulas
//! with the fitted value rather than a pretend ω = 2.37 (see DESIGN.md,
//! "Effective ω honesty").

use crate::bitmat::BitMatrix;
use crate::dense::multiply_rowwise;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Least-squares slope of `log y` against `log x` — the fitted runtime
/// exponent of a size sweep. Returns `None` with fewer than two points or
/// non-positive values.
pub fn fit_exponent(points: &[(f64, f64)]) -> Option<f64> {
    if points.len() < 2 {
        return None;
    }
    if points.iter().any(|&(x, y)| x <= 0.0 || y <= 0.0) {
        return None;
    }
    let n = points.len() as f64;
    let (mut sx, mut sy, mut sxx, mut sxy) = (0.0, 0.0, 0.0, 0.0);
    for &(x, y) in points {
        let lx = x.ln();
        let ly = y.ln();
        sx += lx;
        sy += ly;
        sxx += lx * lx;
        sxy += lx * ly;
    }
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return None;
    }
    Some((n * sxy - sx * sy) / denom)
}

/// Time `f()` in seconds (single shot — callers supply sizes large enough
/// to dominate timer noise).
pub fn time_secs<T>(mut f: impl FnMut() -> T) -> (f64, T) {
    let start = Instant::now();
    let out = f();
    (start.elapsed().as_secs_f64(), out)
}

/// Measure the effective exponent of the word-parallel dense multiply on
/// this machine across the given sizes. Deterministic inputs (density
/// 0.5).
pub fn calibrate_effective_omega(sizes: &[usize]) -> Option<f64> {
    let mut pts = Vec::with_capacity(sizes.len());
    for &n in sizes {
        let mut rng = StdRng::seed_from_u64(n as u64);
        let a = BitMatrix::random(n, n, 0.5, &mut rng);
        let b = BitMatrix::random(n, n, 0.5, &mut rng);
        let (t, c) = time_secs(|| multiply_rowwise(&a, &b));
        std::hint::black_box(c.count_ones());
        pts.push((n as f64, t.max(1e-9)));
    }
    fit_exponent(&pts)
}

/// The AYZ degree threshold `Δ = m^{(ω−1)/(ω+1)}` (proof of Thm 3.2),
/// instantiated with the effective ω.
pub fn ayz_delta(m: usize, omega_eff: f64) -> usize {
    let exp = (omega_eff - 1.0) / (omega_eff + 1.0);
    ((m as f64).powf(exp).round() as usize).max(1)
}

/// The AYZ total runtime exponent `2ω/(ω+1)` (Thm 3.2).
pub fn ayz_exponent(omega_eff: f64) -> f64 {
    2.0 * omega_eff / (omega_eff + 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_recovers_known_slope() {
        let pts: Vec<(f64, f64)> =
            (1..10).map(|i| (i as f64, (i as f64).powi(3) * 2.0)).collect();
        let e = fit_exponent(&pts).unwrap();
        assert!((e - 3.0).abs() < 1e-9, "e={e}");
    }

    #[test]
    fn fit_rejects_degenerate() {
        assert!(fit_exponent(&[]).is_none());
        assert!(fit_exponent(&[(1.0, 1.0)]).is_none());
        assert!(fit_exponent(&[(1.0, 0.0), (2.0, 1.0)]).is_none());
        assert!(fit_exponent(&[(2.0, 1.0), (2.0, 5.0)]).is_none());
    }

    #[test]
    fn ayz_formulas_at_known_omegas() {
        // ω = 2 → Δ = m^{1/3}, exponent 4/3; ω = 3 → Δ = m^{1/2},
        // exponent 3/2 (matches the naive m^{3/2} as the paper notes).
        assert_eq!(ayz_delta(1_000_000, 2.0), 100);
        assert_eq!(ayz_delta(1_000_000, 3.0), 1000);
        assert!((ayz_exponent(2.0) - 4.0 / 3.0).abs() < 1e-12);
        assert!((ayz_exponent(3.0) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn calibration_runs_and_is_plausible() {
        // tiny sizes: we only check it produces a finite number in a sane
        // band (wide because tiny inputs are noisy).
        let e = calibrate_effective_omega(&[64, 96, 128]).unwrap();
        assert!(e.is_finite());
        assert!((0.5..4.5).contains(&e), "effective omega fitted at {e}");
    }
}
