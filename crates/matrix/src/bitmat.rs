//! Dense Boolean matrices, one bit per entry.

use rand::rngs::StdRng;
use rand::Rng;

/// A dense `rows × cols` Boolean matrix stored row-major, 64 entries per
/// word.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BitMatrix {
    rows: usize,
    cols: usize,
    words_per_row: usize,
    bits: Vec<u64>,
}

impl BitMatrix {
    /// All-zero matrix.
    pub fn zero(rows: usize, cols: usize) -> Self {
        let words_per_row = cols.div_ceil(64);
        BitMatrix { rows, cols, words_per_row, bits: vec![0; rows * words_per_row] }
    }

    /// Identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zero(n, n);
        for i in 0..n {
            m.set(i, i, true);
        }
        m
    }

    /// Random matrix where each entry is 1 with probability `density`.
    pub fn random(rows: usize, cols: usize, density: f64, rng: &mut StdRng) -> Self {
        let mut m = Self::zero(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                if rng.gen_bool(density) {
                    m.set(i, j, true);
                }
            }
        }
        m
    }

    /// Build from a list of (row, col) one-entries.
    pub fn from_entries(rows: usize, cols: usize, entries: &[(usize, usize)]) -> Self {
        let mut m = Self::zero(rows, cols);
        for &(i, j) in entries {
            m.set(i, j, true);
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Get entry (i, j).
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> bool {
        debug_assert!(i < self.rows && j < self.cols);
        let w = self.bits[i * self.words_per_row + j / 64];
        (w >> (j % 64)) & 1 == 1
    }

    /// Set entry (i, j).
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: bool) {
        debug_assert!(i < self.rows && j < self.cols);
        let w = &mut self.bits[i * self.words_per_row + j / 64];
        if v {
            *w |= 1u64 << (j % 64);
        } else {
            *w &= !(1u64 << (j % 64));
        }
    }

    /// The words of row `i`.
    #[inline]
    pub fn row_words(&self, i: usize) -> &[u64] {
        &self.bits[i * self.words_per_row..(i + 1) * self.words_per_row]
    }

    /// Mutable words of row `i`.
    #[inline]
    pub fn row_words_mut(&mut self, i: usize) -> &mut [u64] {
        &mut self.bits[i * self.words_per_row..(i + 1) * self.words_per_row]
    }

    /// OR `src`'s row words into row `i` (both matrices must have the same
    /// column count).
    #[inline]
    pub fn or_row_from(&mut self, i: usize, src: &BitMatrix, src_row: usize) {
        debug_assert_eq!(self.cols, src.cols);
        let dst = &mut self.bits[i * self.words_per_row..(i + 1) * self.words_per_row];
        let s = &src.bits[src_row * src.words_per_row..(src_row + 1) * src.words_per_row];
        for (d, &w) in dst.iter_mut().zip(s) {
            *d |= w;
        }
    }

    /// Number of one-entries.
    pub fn count_ones(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Column indices of the ones in row `i`, ascending.
    pub fn row_ones(&self, i: usize) -> Vec<usize> {
        let mut out = Vec::new();
        for (wi, &w) in self.row_words(i).iter().enumerate() {
            let mut w = w;
            while w != 0 {
                out.push(wi * 64 + w.trailing_zeros() as usize);
                w &= w - 1;
            }
        }
        out
    }

    /// Transpose.
    pub fn transpose(&self) -> BitMatrix {
        let mut t = BitMatrix::zero(self.cols, self.rows);
        for i in 0..self.rows {
            for j in self.row_ones(i) {
                t.set(j, i, true);
            }
        }
        t
    }

    /// Is any entry set?
    pub fn any(&self) -> bool {
        self.bits.iter().any(|&w| w != 0)
    }

    /// Does this matrix intersect `other` anywhere (entrywise AND ≠ 0)?
    pub fn intersects(&self, other: &BitMatrix) -> bool {
        debug_assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        self.bits.iter().zip(&other.bits).any(|(&a, &b)| a & b != 0)
    }

    /// List of (row, col) one-entries, row-major order.
    pub fn entries(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::with_capacity(self.count_ones());
        for i in 0..self.rows {
            for j in self.row_ones(i) {
                out.push((i, j));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn set_get_roundtrip() {
        let mut m = BitMatrix::zero(3, 130); // multi-word rows
        m.set(1, 100, true);
        m.set(2, 63, true);
        m.set(2, 64, true);
        assert!(m.get(1, 100));
        assert!(!m.get(1, 99));
        assert!(m.get(2, 63) && m.get(2, 64));
        m.set(1, 100, false);
        assert!(!m.get(1, 100));
        assert_eq!(m.count_ones(), 2);
    }

    #[test]
    fn identity_and_transpose() {
        let id = BitMatrix::identity(10);
        assert_eq!(id.count_ones(), 10);
        assert_eq!(id.transpose(), id);
        let mut m = BitMatrix::zero(2, 3);
        m.set(0, 2, true);
        let t = m.transpose();
        assert_eq!(t.rows(), 3);
        assert!(t.get(2, 0));
    }

    #[test]
    fn row_ones_ascending() {
        let mut m = BitMatrix::zero(1, 200);
        for j in [5usize, 64, 65, 190] {
            m.set(0, j, true);
        }
        assert_eq!(m.row_ones(0), vec![5, 64, 65, 190]);
    }

    #[test]
    fn or_row_from_merges() {
        let mut a = BitMatrix::zero(2, 70);
        a.set(0, 69, true);
        let mut b = BitMatrix::zero(2, 70);
        b.set(1, 3, true);
        a.or_row_from(0, &b, 1);
        assert!(a.get(0, 3) && a.get(0, 69));
    }

    #[test]
    fn random_density() {
        let mut rng = StdRng::seed_from_u64(42);
        let m = BitMatrix::random(100, 100, 0.3, &mut rng);
        let ones = m.count_ones();
        assert!((2000..4000).contains(&ones), "ones = {ones}");
    }

    #[test]
    fn entries_roundtrip() {
        let entries = vec![(0, 1), (2, 2), (1, 0)];
        let m = BitMatrix::from_entries(3, 3, &entries);
        let mut got = m.entries();
        got.sort_unstable();
        let mut want = entries;
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn any_and_intersects() {
        let z = BitMatrix::zero(2, 2);
        assert!(!z.any());
        let id = BitMatrix::identity(2);
        assert!(id.any());
        assert!(!z.intersects(&id));
        assert!(id.intersects(&id));
    }
}
