//! Sparse Boolean matrix multiplication (paper §2.3, Hypothesis 1).
//!
//! Runtime here is measured in `m` = non-zeros of inputs + output. The
//! crate provides:
//!
//! * [`spgemm`] — classical row-wise SpGEMM with a sparse accumulator:
//!   O(flops) where flops = Σ_k deg_out_A(k)·deg_in_B(k), up to m² in the
//!   worst case;
//! * [`spgemm_heavy_light`] — the output-sensitive degree-split
//!   algorithm: *light* middle indices (min degree ≤ Δ) go through the
//!   accumulator at cost O(m·Δ); *heavy* middle indices (both degrees
//!   exceeding Δ; at most 2m/Δ of them) are compacted and handled by one
//!   dense word-parallel product. With Δ ≈ m^{1/3} the shape is the
//!   m^{4/3} bound the Sparse BMM Hypothesis conjectures optimal (paper
//!   §2.3: "the general belief … is that O(m^{4/3}) can likely not be
//!   beaten").

use crate::bitmat::BitMatrix;
use crate::dense::multiply_rowwise;

/// A sparse Boolean matrix in CSR-like form: per-row sorted column lists.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SparseBoolMat {
    n_rows: usize,
    n_cols: usize,
    rows: Vec<Vec<u32>>,
}

impl SparseBoolMat {
    /// Build from (row, col) entries (deduplicated).
    pub fn from_entries(
        n_rows: usize,
        n_cols: usize,
        entries: impl IntoIterator<Item = (u32, u32)>,
    ) -> Self {
        let mut rows: Vec<Vec<u32>> = vec![Vec::new(); n_rows];
        for (r, c) in entries {
            assert!((r as usize) < n_rows && (c as usize) < n_cols);
            rows[r as usize].push(c);
        }
        for r in rows.iter_mut() {
            r.sort_unstable();
            r.dedup();
        }
        SparseBoolMat { n_rows, n_cols, rows }
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Sorted column indices of row `r`.
    pub fn row(&self, r: usize) -> &[u32] {
        &self.rows[r]
    }

    /// Number of non-zeros.
    pub fn nnz(&self) -> usize {
        self.rows.iter().map(Vec::len).sum()
    }

    /// All (row, col) entries in row-major order.
    pub fn entries(&self) -> Vec<(u32, u32)> {
        let mut out = Vec::with_capacity(self.nnz());
        for (r, cols) in self.rows.iter().enumerate() {
            for &c in cols {
                out.push((r as u32, c));
            }
        }
        out
    }

    /// Transpose.
    pub fn transpose(&self) -> SparseBoolMat {
        let mut rows: Vec<Vec<u32>> = vec![Vec::new(); self.n_cols];
        for (r, cols) in self.rows.iter().enumerate() {
            for &c in cols {
                rows[c as usize].push(r as u32);
            }
        }
        // already sorted because we sweep rows in order
        SparseBoolMat { n_rows: self.n_cols, n_cols: self.n_rows, rows }
    }

    /// Column degrees (number of non-zeros per column).
    pub fn col_degrees(&self) -> Vec<u32> {
        let mut deg = vec![0u32; self.n_cols];
        for cols in &self.rows {
            for &c in cols {
                deg[c as usize] += 1;
            }
        }
        deg
    }

    /// Densify (for testing / the heavy part of the split).
    pub fn to_dense(&self) -> BitMatrix {
        let mut m = BitMatrix::zero(self.n_rows, self.n_cols);
        for (r, cols) in self.rows.iter().enumerate() {
            for &c in cols {
                m.set(r, c as usize, true);
            }
        }
        m
    }

    /// From a dense matrix.
    pub fn from_dense(m: &BitMatrix) -> Self {
        Self::from_entries(
            m.rows(),
            m.cols(),
            m.entries().into_iter().map(|(r, c)| (r as u32, c as u32)),
        )
    }
}

/// Row-wise SpGEMM with a sparse accumulator (dense `seen` array reused
/// across rows + touched list, so each row costs its flops, not n).
pub fn spgemm(a: &SparseBoolMat, b: &SparseBoolMat) -> SparseBoolMat {
    assert_eq!(a.n_cols, b.n_rows, "dimension mismatch");
    let mut seen = vec![false; b.n_cols];
    let mut touched: Vec<u32> = Vec::new();
    let mut rows: Vec<Vec<u32>> = vec![Vec::new(); a.n_rows];
    for (i, arow) in a.rows.iter().enumerate() {
        for &k in arow {
            for &j in &b.rows[k as usize] {
                if !seen[j as usize] {
                    seen[j as usize] = true;
                    touched.push(j);
                }
            }
        }
        touched.sort_unstable();
        rows[i] = touched.clone();
        for &j in &touched {
            seen[j as usize] = false;
        }
        touched.clear();
    }
    SparseBoolMat { n_rows: a.n_rows, n_cols: b.n_cols, rows }
}

/// Statistics reported by the heavy/light multiply, for the experiment
/// harness.
#[derive(Clone, Copy, Debug, Default)]
pub struct HeavyLightStats {
    /// Middle indices routed to the light (join) side.
    pub light_indices: usize,
    /// Middle indices routed to the heavy (dense) side.
    pub heavy_indices: usize,
    /// Flops spent in the light side.
    pub light_flops: usize,
}

/// Output-sensitive sparse BMM by degree splitting.
///
/// A middle index `k` is *light* if `min(deg_A-col(k), deg_B-row(k)) ≤ Δ`;
/// light indices are processed by the accumulator at total cost
/// `O(Δ·(nnz A + nnz B))`. The remaining heavy indices number at most
/// `(nnz A + nnz B)/Δ`; they are compacted and multiplied densely. With
/// `Δ = m^{1/3}` and the word-parallel dense multiply, the total is the
/// m^{4/3}-shaped bound of Hypothesis 1 (exactly the structure of the
/// AYZ argument in Thm 3.2).
pub fn spgemm_heavy_light(
    a: &SparseBoolMat,
    b: &SparseBoolMat,
    delta: usize,
) -> (SparseBoolMat, HeavyLightStats) {
    assert_eq!(a.n_cols, b.n_rows, "dimension mismatch");
    assert!(delta >= 1);
    let deg_a_col = a.col_degrees(); // out-degree of middle index in A
    let deg_b_row: Vec<u32> = b.rows.iter().map(|r| r.len() as u32).collect();

    let mut stats = HeavyLightStats::default();

    // --- light side ---
    // For middle index k light by B (deg_B ≤ Δ): every pair (i,k)∈A,
    // (k,j)∈B costs one op; iterate A's entries and expand via B.
    // For k light by A only: iterate B's entries and expand via A^T.
    let at = a.transpose(); // rows of A^T = columns of A
    let mut out_rows: Vec<Vec<u32>> = vec![Vec::new(); a.n_rows];
    let mut heavy: Vec<u32> = Vec::new();
    for k in 0..a.n_cols {
        let da = deg_a_col[k] as usize;
        let db = deg_b_row[k] as usize;
        if da == 0 || db == 0 {
            continue;
        }
        if da.min(db) <= delta {
            stats.light_indices += 1;
            stats.light_flops += da * db;
            for &i in &at.rows[k] {
                for &j in &b.rows[k] {
                    // duplicate suppression happens at the end; rows stay
                    // small because flops are bounded
                    out_rows[i as usize].push(j);
                }
            }
        } else {
            heavy.push(k as u32);
        }
    }
    stats.heavy_indices = heavy.len();

    // --- heavy side: compact and densify ---
    if !heavy.is_empty() {
        let h = heavy.len();
        let mut heavy_pos = vec![u32::MAX; a.n_cols];
        for (p, &k) in heavy.iter().enumerate() {
            heavy_pos[k as usize] = p as u32;
        }
        // A restricted to heavy columns: n_rows × h
        let mut ah = BitMatrix::zero(a.n_rows, h);
        for (i, arow) in a.rows.iter().enumerate() {
            for &k in arow {
                let p = heavy_pos[k as usize];
                if p != u32::MAX {
                    ah.set(i, p as usize, true);
                }
            }
        }
        // B restricted to heavy rows: h × n_cols
        let mut bh = BitMatrix::zero(h, b.n_cols);
        for (p, &k) in heavy.iter().enumerate() {
            for &j in &b.rows[k as usize] {
                bh.set(p, j as usize, true);
            }
        }
        let ch = multiply_rowwise(&ah, &bh);
        for (i, out_row) in out_rows.iter_mut().enumerate().take(a.n_rows) {
            for j in ch.row_ones(i) {
                out_row.push(j as u32);
            }
        }
    }

    // dedup rows
    for row in out_rows.iter_mut() {
        row.sort_unstable();
        row.dedup();
    }
    (SparseBoolMat { n_rows: a.n_rows, n_cols: b.n_cols, rows: out_rows }, stats)
}

/// The Δ used by default for inputs with `m` total non-zeros: `m^{1/3}`,
/// the balance point when the dense side behaves quadratically in its
/// dimension (ω → 2 word-parallel regime); see EXPERIMENTS.md E14 for the
/// ablation.
pub fn default_delta(m: usize) -> usize {
    ((m as f64).powf(1.0 / 3.0).round() as usize).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_sparse(n: usize, m: usize, seed: u64) -> SparseBoolMat {
        let mut rng = StdRng::seed_from_u64(seed);
        let entries: Vec<(u32, u32)> = (0..m)
            .map(|_| (rng.gen_range(0..n as u32), rng.gen_range(0..n as u32)))
            .collect();
        SparseBoolMat::from_entries(n, n, entries)
    }

    #[test]
    fn dense_roundtrip() {
        let s = random_sparse(50, 200, 1);
        assert_eq!(SparseBoolMat::from_dense(&s.to_dense()), s);
    }

    #[test]
    fn transpose_involution() {
        let s = random_sparse(30, 100, 2);
        assert_eq!(s.transpose().transpose(), s);
    }

    #[test]
    fn spgemm_matches_dense() {
        for seed in 0..5u64 {
            let a = random_sparse(40, 120, seed);
            let b = random_sparse(40, 120, seed + 100);
            let want = SparseBoolMat::from_dense(&multiply_rowwise(
                &a.to_dense(),
                &b.to_dense(),
            ));
            assert_eq!(spgemm(&a, &b), want, "seed={seed}");
        }
    }

    #[test]
    fn heavy_light_matches_spgemm() {
        for seed in 0..5u64 {
            let a = random_sparse(60, 400, seed);
            let b = random_sparse(60, 400, seed + 7);
            let want = spgemm(&a, &b);
            for delta in [1usize, 2, 5, 100] {
                let (got, _) = spgemm_heavy_light(&a, &b, delta);
                assert_eq!(got, want, "seed={seed} delta={delta}");
            }
        }
    }

    #[test]
    fn heavy_light_routes_hub_to_dense() {
        // star: middle index 0 has degree n on both sides → heavy for
        // small delta.
        let n = 50;
        let a = SparseBoolMat::from_entries(n, n, (0..n as u32).map(|i| (i, 0)));
        let b = SparseBoolMat::from_entries(n, n, (0..n as u32).map(|j| (0, j)));
        let (c, stats) = spgemm_heavy_light(&a, &b, 3);
        assert_eq!(stats.heavy_indices, 1);
        assert_eq!(stats.light_indices, 0);
        assert_eq!(c.nnz(), n * n);
    }

    #[test]
    fn light_side_flops_bounded() {
        let a = random_sparse(100, 500, 11);
        let b = random_sparse(100, 500, 12);
        let delta = 4;
        let (_, stats) = spgemm_heavy_light(&a, &b, delta);
        // Σ_light da·db ≤ Δ·Σ max(da,db) ≤ Δ·(nnzA + nnzB)
        assert!(stats.light_flops <= delta * (a.nnz() + b.nnz()));
    }

    #[test]
    fn rectangular_spgemm() {
        let a = SparseBoolMat::from_entries(2, 3, [(0u32, 1u32), (1, 2)]);
        let b = SparseBoolMat::from_entries(3, 4, [(1u32, 3u32), (2, 0)]);
        let c = spgemm(&a, &b);
        assert_eq!(c.entries(), vec![(0, 3), (1, 0)]);
    }

    #[test]
    fn default_delta_scaling() {
        assert_eq!(default_delta(1), 1);
        assert_eq!(default_delta(1000), 10);
        assert_eq!(default_delta(1_000_000), 100);
    }

    #[test]
    fn empty_matrices() {
        let a = SparseBoolMat::from_entries(5, 5, std::iter::empty());
        let b = random_sparse(5, 10, 3);
        assert_eq!(spgemm(&a, &b).nnz(), 0);
        let (c, _) = spgemm_heavy_light(&a, &b, 2);
        assert_eq!(c.nnz(), 0);
    }
}
