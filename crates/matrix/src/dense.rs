//! Dense Boolean matrix multiplication.
//!
//! Over the Boolean semiring, `C[i][j] = ⋁_k A[i][k] ∧ B[k][j]`
//! (paper §2.3). Three implementations with different constants:
//!
//! * [`multiply_naive`] — bit-at-a-time O(n³), the correctness reference;
//! * [`multiply_rowwise`] — for every 1 in `A`'s row, OR the matching row
//!   of `B` into the output row: O(n³ / 64) word-parallel, the default;
//! * [`multiply_blocked`] — the same with L2-friendly row blocking.

use crate::bitmat::BitMatrix;

/// Reference O(n³) multiply, one bit at a time. Use only in tests.
pub fn multiply_naive(a: &BitMatrix, b: &BitMatrix) -> BitMatrix {
    assert_eq!(a.cols(), b.rows(), "dimension mismatch");
    let mut c = BitMatrix::zero(a.rows(), b.cols());
    for i in 0..a.rows() {
        for j in 0..b.cols() {
            let mut v = false;
            for k in 0..a.cols() {
                if a.get(i, k) && b.get(k, j) {
                    v = true;
                    break;
                }
            }
            if v {
                c.set(i, j, true);
            }
        }
    }
    c
}

/// Word-parallel multiply: for each set bit `k` of `A`'s row `i`, OR row
/// `k` of `B` into row `i` of the result. O(n²·(n/64)) worst case, and
/// output-sensitive in the ones of `A`.
pub fn multiply_rowwise(a: &BitMatrix, b: &BitMatrix) -> BitMatrix {
    assert_eq!(a.cols(), b.rows(), "dimension mismatch");
    let mut c = BitMatrix::zero(a.rows(), b.cols());
    for i in 0..a.rows() {
        for (wi, &w) in a.row_words(i).iter().enumerate() {
            let mut w = w;
            while w != 0 {
                let k = wi * 64 + w.trailing_zeros() as usize;
                w &= w - 1;
                c.or_row_from(i, b, k);
            }
        }
    }
    c
}

/// Blocked variant of [`multiply_rowwise`]: processes `B` in horizontal
/// stripes of `block` rows so the stripe stays cache-resident across many
/// rows of `A`.
pub fn multiply_blocked(a: &BitMatrix, b: &BitMatrix, block: usize) -> BitMatrix {
    assert_eq!(a.cols(), b.rows(), "dimension mismatch");
    assert!(block >= 1);
    let mut c = BitMatrix::zero(a.rows(), b.cols());
    let n_k = a.cols();
    let mut k0 = 0;
    while k0 < n_k {
        let k1 = (k0 + block).min(n_k);
        for i in 0..a.rows() {
            // walk only the words overlapping [k0, k1)
            let w_start = k0 / 64;
            let w_end = k1.div_ceil(64);
            for wi in w_start..w_end.min(a.row_words(i).len()) {
                let mut w = a.row_words(i)[wi];
                // mask to the [k0, k1) range
                let lo = wi * 64;
                if k0 > lo {
                    w &= !0u64 << (k0 - lo);
                }
                if k1 < lo + 64 {
                    w &= (1u64 << (k1 - lo)) - 1;
                }
                while w != 0 {
                    let k = wi * 64 + w.trailing_zeros() as usize;
                    w &= w - 1;
                    c.or_row_from(i, b, k);
                }
            }
        }
        k0 = k1;
    }
    c
}

/// Boolean matrix *squaring* with the diagonal cleared — used by the
/// triangle detectors: `G` has a triangle iff `A² ∧ A ≠ 0`.
pub fn square(a: &BitMatrix) -> BitMatrix {
    multiply_rowwise(a, a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn random(n: usize, seed: u64, d: f64) -> BitMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        BitMatrix::random(n, n, d, &mut rng)
    }

    #[test]
    fn rowwise_matches_naive() {
        for n in [1usize, 7, 64, 65, 100] {
            let a = random(n, n as u64, 0.1);
            let b = random(n, n as u64 + 1, 0.1);
            assert_eq!(multiply_rowwise(&a, &b), multiply_naive(&a, &b), "n={n}");
        }
    }

    #[test]
    fn blocked_matches_rowwise() {
        let a = random(130, 1, 0.05);
        let b = random(130, 2, 0.05);
        let want = multiply_rowwise(&a, &b);
        for block in [1usize, 17, 64, 100, 1000] {
            assert_eq!(multiply_blocked(&a, &b, block), want, "block={block}");
        }
    }

    #[test]
    fn rectangular_multiply() {
        let mut a = BitMatrix::zero(2, 3);
        a.set(0, 1, true);
        let mut b = BitMatrix::zero(3, 4);
        b.set(1, 3, true);
        let c = multiply_rowwise(&a, &b);
        assert_eq!(c.rows(), 2);
        assert_eq!(c.cols(), 4);
        assert!(c.get(0, 3));
        assert_eq!(c.count_ones(), 1);
    }

    #[test]
    fn identity_is_neutral() {
        let a = random(50, 9, 0.2);
        let id = BitMatrix::identity(50);
        assert_eq!(multiply_rowwise(&a, &id), a);
        assert_eq!(multiply_rowwise(&id, &a), a);
    }

    #[test]
    fn square_triangle_detection() {
        // path 0-1-2: A² has (0,2) via 1, but A ∧ A² empty → no triangle
        let path = BitMatrix::from_entries(3, 3, &[(0, 1), (1, 0), (1, 2), (2, 1)]);
        let sq = square(&path);
        assert!(sq.get(0, 2));
        // triangle 0-1-2-0: A ∧ A² nonzero
        let tri = BitMatrix::from_entries(
            3,
            3,
            &[(0, 1), (1, 0), (1, 2), (2, 1), (0, 2), (2, 0)],
        );
        assert!(square(&tri).intersects(&tri));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn mismatched_dims_panic() {
        let a = BitMatrix::zero(2, 3);
        let b = BitMatrix::zero(4, 2);
        let _ = multiply_rowwise(&a, &b);
    }
}
