#!/bin/sh
# Normalize a cqsh smoke transcript before diffing against
# ci/smoke.golden. Masks exactly the fields that cannot be byte-stable
# across runs or server modes, and nothing else:
#   * METRICS latency percentiles (wall-clock measurements),
#   * `storage.wal.*` METRICS gauges (present only when cqd runs with
#     --data-dir; the same script drives both the in-memory and the
#     durable smoke leg against one golden),
#   * the `STATS <db>` storage line (names the mode and WAL byte size),
#   * EXPLAIN ANALYZE / PROFILE span timings (`time=…ms`, `ns=…`) —
#     row counts and span names stay exact,
#   * METRICS RATE windows and per-second rates (`window=…s`,
#     `snapshots=…`, `rate=…/s`) — the counter set stays exact,
#   * the `STATS <db>` traffic line (qps/err-rate over a wall-clock
#     window).
# To regenerate the golden: pipe a fresh transcript through this script.
exec sed -E \
    -e 's/(p50|p95|p99)=[0-9]+(\.[0-9]+)?(ns|us|ms|s)/\1=_/g' \
    -e '/ storage\.wal\./d' \
    -e 's/^\* storage: .*/* storage: (masked: differs between in-memory and durable legs)/' \
    -e 's/time=[0-9]+(\.[0-9]+)?ms/time=<dur>/g' \
    -e 's/\bns=[0-9]+/ns=<n>/g' \
    -e 's/window=[0-9]+(\.[0-9]+)?s/window=<w>s/g' \
    -e 's/snapshots=[0-9]+/snapshots=<n>/g' \
    -e 's#rate=[0-9]+(\.[0-9]+)?/s#rate=<r>/s#g' \
    -e 's/^\* traffic: .*/* traffic: (masked: rates over a wall-clock window)/'
