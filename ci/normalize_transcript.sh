#!/bin/sh
# Normalize a cqsh smoke transcript before diffing against
# ci/smoke.golden. Masks exactly the fields that cannot be byte-stable
# across runs or server modes, and nothing else:
#   * METRICS latency percentiles (wall-clock measurements),
#   * `storage.wal.*` METRICS gauges (present only when cqd runs with
#     --data-dir; the same script drives both the in-memory and the
#     durable smoke leg against one golden),
#   * the `STATS <db>` storage line (names the mode and WAL byte size).
# To regenerate the golden: pipe a fresh transcript through this script.
exec sed -E \
    -e 's/(p50|p95|p99)=[0-9]+(\.[0-9]+)?(ns|us|ms|s)/\1=_/g' \
    -e '/ storage\.wal\./d' \
    -e 's/^\* storage: .*/* storage: (masked: differs between in-memory and durable legs)/'
